// Physical storage requirements of a practical LIS.
//
// The marked-graph abstraction lumps all storage of a pipeline stage into one
// place "that can hold multiple tokens when stalling occurs" (Fig. 4). A
// hardware implementation must provision real registers for the worst case,
// so the designer-facing question is: how many items can each channel's
// lumped input stage ever hold? Classic marked-graph theory gives the exact
// structural bound (mg/analysis.hpp): the minimum initial token count over
// the doubled-graph cycles through the place.
#pragma once

#include <cstdint>
#include <vector>

#include "lis/lis_graph.hpp"

namespace lid::core {

/// Worst-case occupancy of one channel's delivery place.
struct ChannelStorage {
  lis::ChannelId channel = graph::kInvalidEdge;
  /// Structural bound on items simultaneously held at the destination's
  /// lumped input stage (queue + absorbed relay-station/latch contents).
  std::int64_t occupancy_bound = 0;
  /// The configured queue capacity q, for comparison.
  int configured_capacity = 1;
  /// Relay stations on the channel.
  int relay_stations = 0;
};

/// Bounds for every channel of the (finite-queue, backpressured) LIS.
std::vector<ChannelStorage> storage_bounds(const lis::LisGraph& lis);

/// Total storage bound across all channels — the footprint a synthesized
/// implementation of the lumped abstraction must provision.
std::int64_t total_storage_bound(const lis::LisGraph& lis);

}  // namespace lid::core
