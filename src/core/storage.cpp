#include "core/storage.hpp"

#include "mg/analysis.hpp"
#include "util/check.hpp"

namespace lid::core {

std::vector<ChannelStorage> storage_bounds(const lis::LisGraph& lis) {
  const lis::Expansion expansion = lis::expand_doubled(lis);
  std::vector<ChannelStorage> out;
  out.reserve(lis.num_channels());
  for (lis::ChannelId c = 0; c < static_cast<lis::ChannelId>(lis.num_channels()); ++c) {
    const lis::Channel& ch = lis.channel(c);
    // The delivery place is the last forward hop (into the destination shell).
    const mg::PlaceId delivery = expansion.forward_places[static_cast<std::size_t>(c)].back();
    const auto bound = mg::place_bound(expansion.graph, delivery);
    // Backpressure puts every forward place on a cycle with its channel's
    // queue backedge, so the bound always exists in a doubled expansion.
    LID_ASSERT(bound.has_value(), "doubled-graph delivery place must be bounded");
    ChannelStorage storage;
    storage.channel = c;
    storage.occupancy_bound = *bound;
    storage.configured_capacity = ch.queue_capacity;
    storage.relay_stations = ch.relay_stations;
    out.push_back(storage);
  }
  return out;
}

std::int64_t total_storage_bound(const lis::LisGraph& lis) {
  std::int64_t total = 0;
  for (const ChannelStorage& s : storage_bounds(lis)) total += s.occupancy_bound;
  return total;
}

}  // namespace lid::core
