// Certificate emission: build verify::Certificate witnesses out of the
// solver state this module already computes. The *checker* lives in
// src/verify and shares no code with this side — emission may lean on
// mg::mcm_evidence (Howard potentials) and the lazy solver's recorded
// constraint cycles, because a wrong emission can only ever produce a
// certificate the independent checker rejects.
#pragma once

#include "core/queue_sizing.hpp"
#include "lis/lis_graph.hpp"
#include "verify/certificate.hpp"

namespace lid::core {

/// Certificate for an analyze verdict: optimality witnesses for theta(G) on
/// expand_ideal and theta(d[G]) on expand_doubled. Always succeeds (the
/// witnesses are recomputed from the netlist, not taken on faith from a
/// previous analysis), and verify::check accepts the result by construction.
verify::Certificate certify_analysis(const lis::LisGraph& lis);

/// Certificate for a finished queue-sizing run: the ideal ceiling, the
/// applied per-channel weights (diffed sized-vs-original, so they hold for
/// whichever solver produced `report.sized`), and a post-sizing optimality
/// witness proving the achieved MST. When the lazy solver converged without
/// the SCC collapse, its generating token-deficit constraint set rides along
/// as the lower-bound witness (see docs/certificates.md for what that does
/// and does not prove). `report` must be the result of sizing `original`.
verify::Certificate certify_sizing(const lis::LisGraph& original, const QsReport& report);

}  // namespace lid::core
