#include "core/exact_paper.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace lid::core {
namespace {

/// The replicated instance: every copy of set s may carry at most one token.
struct Replicated {
  /// replica[i] = original set index of replica i.
  std::vector<int> origin;
};

Replicated replicate(const TdInstance& instance) {
  Replicated out;
  for (std::size_t s = 0; s < instance.num_sets(); ++s) {
    std::int64_t largest = 0;
    for (const int c : instance.set_members[s]) {
      largest = std::max(largest, instance.deficits[static_cast<std::size_t>(c)]);
    }
    for (std::int64_t r = 0; r < largest; ++r) {
      out.origin.push_back(static_cast<int>(s));
    }
  }
  return out;
}

/// Depth-limited search: place exactly-one-token replicas in non-decreasing
/// replica order until every cycle is satisfied or the depth budget runs out.
class PaperSearch {
 public:
  PaperSearch(const TdInstance& instance, const Replicated& replicated,
              const ExactOptions& options, ExactResult& stats)
      : instance_(instance),
        replicated_(replicated),
        options_(options),
        deadline_(options.timeout_ms),
        stats_(stats) {}

  std::optional<std::vector<std::int64_t>> run(std::int64_t budget) {
    residual_ = instance_.deficits;
    weights_.assign(instance_.num_sets(), 0);
    unsatisfied_ = 0;
    for (const std::int64_t d : residual_) {
      if (d > 0) ++unsatisfied_;
    }
    cut_off_ = false;
    if (descend(0, budget)) return weights_;
    return std::nullopt;
  }

  [[nodiscard]] bool cut_off() const { return cut_off_; }

 private:
  bool descend(std::size_t first_replica, std::int64_t budget) {
    // Node budget at every node (deterministic cut-off point); clock and
    // cancel token on a stride (cheap hot path, stops within 512 nodes).
    ++stats_.nodes_explored;
    if (options_.max_nodes > 0 && stats_.nodes_explored >= options_.max_nodes) {
      cut_off_ = true;
    } else if (stats_.nodes_explored % 512 == 0) {
      if (options_.cancel.cancelled()) {
        cut_off_ = true;
        stats_.cancelled = true;
      } else if (deadline_.expired()) {
        cut_off_ = true;
      }
    }
    if (cut_off_) return false;
    if (unsatisfied_ == 0) return true;
    if (budget == 0) return false;

    for (std::size_t r = first_replica; r < replicated_.origin.size(); ++r) {
      const auto s = static_cast<std::size_t>(replicated_.origin[r]);
      place(s);
      if (descend(r + 1, budget - 1)) return true;
      unplace(s);
      if (cut_off_) return false;
    }
    return false;
  }

  void place(std::size_t s) {
    weights_[s] += 1;
    for (const int c : instance_.set_members[s]) {
      const auto ci = static_cast<std::size_t>(c);
      if (residual_[ci] == 1) --unsatisfied_;
      residual_[ci] -= 1;
    }
  }

  void unplace(std::size_t s) {
    weights_[s] -= 1;
    for (const int c : instance_.set_members[s]) {
      const auto ci = static_cast<std::size_t>(c);
      residual_[ci] += 1;
      if (residual_[ci] == 1) ++unsatisfied_;
    }
  }

  const TdInstance& instance_;
  const Replicated& replicated_;
  const ExactOptions& options_;
  util::Deadline deadline_;
  ExactResult& stats_;

  std::vector<std::int64_t> residual_;
  std::vector<std::int64_t> weights_;
  int unsatisfied_ = 0;
  bool cut_off_ = false;
};

}  // namespace

ExactResult solve_exact_paper(const TdInstance& instance, const TdSolution& upper_bound,
                              const ExactOptions& options) {
  LID_ENSURE(instance.is_feasible(upper_bound.weights),
             "solve_exact_paper: upper bound infeasible");
  util::Timer timer;
  ExactResult result;

  if (instance.num_cycles() == 0) {
    result.solution = TdSolution{std::vector<std::int64_t>(instance.num_sets(), 0), 0};
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  const Replicated replicated = replicate(instance);
  PaperSearch search(instance, replicated, options, result);

  TdSolution best = upper_bound;
  std::int64_t lo = 1;
  std::int64_t hi = upper_bound.total;
  bool proven = true;
  while (lo < hi) {
    if (options.cancel.cancelled()) {
      result.cancelled = true;
      proven = false;
      break;
    }
    const std::int64_t mid = lo + (hi - lo) / 2;
    const auto assignment = search.run(mid);
    if (search.cut_off()) {
      proven = false;
      break;
    }
    if (assignment) {
      best.weights = *assignment;
      best.total = std::accumulate(assignment->begin(), assignment->end(), std::int64_t{0});
      hi = best.total;
    } else {
      lo = mid + 1;
    }
  }

  result.elapsed_ms = timer.elapsed_ms();
  result.cut_off = !proven;
  if (proven) {
    LID_ASSERT(instance.is_feasible(best.weights), "paper exact solution infeasible");
    result.solution = best;
  }
  return result;
}

}  // namespace lid::core
