#include "core/lazy_sizing.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "core/heuristic.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace lid::core {
namespace {

using lis::ChannelId;
using lis::LisGraph;
using util::Rational;

/// Safety cap on separation rounds. The loop provably terminates (every
/// added constraint is violated by the current weights, so cycles never
/// repeat), but a cap bounds the damage of any future regression; hitting it
/// triggers the full-enumeration fallback, never a wrong answer.
constexpr std::int64_t kMaxLazyIterations = 512;

/// The full eager pipeline, used when the lazy loop cannot make progress.
QsReport run_fallback(const LisGraph& lis, const Rational& theta_ideal,
                      const Rational& theta_practical, const QsOptions& options,
                      LazyStats stats) {
  stats.fell_back = true;
  QsOptions full = options;
  full.method = QsMethod::kBoth;
  QsReport report = size_queues_on_problem(
      lis, build_qs_problem_with_mst(lis, theta_ideal, theta_practical, full.build), full);
  report.lazy = stats;
  return report;
}

}  // namespace

QsReport size_queues_lazy(const LisGraph& lis, const QsOptions& options,
                          mg::Workspace* workspace) {
  return size_queues_lazy_with_mst(lis, lis::ideal_mst(lis), lis::practical_mst(lis), options,
                                   workspace);
}

QsReport size_queues_lazy_with_mst(const LisGraph& lis, const Rational& theta_ideal,
                                   const Rational& theta_practical, const QsOptions& options,
                                   mg::Workspace* workspace) {
  util::Timer timer;
  QsReport report;
  report.problem.theta_ideal = theta_ideal;
  report.problem.theta_practical = theta_practical;
  report.problem.theta_target = (options.build.target_mst > Rational(0))
                                    ? Rational::min(options.build.target_mst, theta_ideal)
                                    : theta_ideal;
  report.sized = lis;
  report.lazy = LazyStats{};

  if (!report.problem.has_degradation()) {
    report.achieved_mst = theta_practical;
    report.exact = SolverOutcome{{}, 0, 0.0, true};
    return report;
  }

  // Size the same graph the eager builder would (SCC collapse included), so
  // deficits — and therefore optimal totals — agree exactly.
  LazyStats& stats = *report.lazy;
  const QsBuildTarget build_target = select_build_target(lis, options.build);
  report.problem.scc_collapsed = build_target.collapsed_used;
  const LisGraph& target = build_target.graph(lis);

  const lis::Expansion expansion = lis::expand_doubled(target);
  mg::MarkedGraph work = expansion.graph;  // mutable marking; structure fixed

  // Queue backedge place <-> channel (in `target` numbering).
  std::map<mg::PlaceId, ChannelId> queue_place_of;
  std::vector<mg::PlaceId> queue_place_by_channel(target.num_channels(), graph::kInvalidEdge);
  for (ChannelId ch = 0; ch < static_cast<ChannelId>(target.num_channels()); ++ch) {
    const mg::PlaceId qp = expansion.queue_place(ch);
    queue_place_of.emplace(qp, ch);
    queue_place_by_channel[static_cast<std::size_t>(ch)] = qp;
  }

  const Rational theta = report.problem.theta_target;
  mg::Workspace local_workspace;
  mg::Workspace& mcm = workspace != nullptr ? *workspace : local_workspace;
  const std::int64_t warm_before = mcm.stats().warm_restarts;

  TdInstance& td = report.problem.td;
  std::map<ChannelId, int> set_of_channel;  // first-sighting stable indices
  std::vector<ChannelId> target_channels;
  std::vector<std::int64_t> weights;   // current optimal weights, one per set
  std::int64_t proven_total = 0;       // optimum of the current sub-instance
  std::int64_t nodes_explored = 0;
  std::set<std::vector<mg::PlaceId>> seen_cycles;  // sorted place signatures
  std::vector<ChannelId> cycle_channels;
  mg::MeanCycle critical;  // buffer reused across iterations

  bool converged = false;
  while (stats.iterations < kMaxLazyIterations) {
    if (options.build.cancel.cancelled()) {
      report.problem.cancelled = true;
      report.lazy->howard_warm_restarts = mcm.stats().warm_restarts - warm_before;
      return report;
    }
    ++stats.iterations;

    // Separation oracle: does the current marking already sustain the
    // target? Howard hands back the critical cycle for free if not.
    const bool cyclic = mg::min_cycle_mean_howard(work, mcm, critical);
    if (!cyclic || Rational::min(Rational(1), critical.mean) >= theta) {
      converged = true;
      break;
    }

    // The new constraint uses the PRISTINE marking (like the eager builder):
    // the critical cycle needs `deficit` extra tokens on its queue backedges
    // to reach the target mean.
    std::int64_t pristine_tokens = 0;
    for (const mg::PlaceId p : critical.cycle) pristine_tokens += expansion.graph.tokens(p);
    const std::int64_t deficit = cycle_deficit(
        pristine_tokens, static_cast<std::int64_t>(critical.cycle.size()), theta);
    cycle_channels.clear();
    for (const mg::PlaceId p : critical.cycle) {
      const auto it = queue_place_of.find(p);
      if (it != queue_place_of.end()) cycle_channels.push_back(it->second);
    }
    std::sort(cycle_channels.begin(), cycle_channels.end());
    cycle_channels.erase(std::unique(cycle_channels.begin(), cycle_channels.end()),
                         cycle_channels.end());

    std::vector<mg::PlaceId> signature = critical.cycle;
    std::sort(signature.begin(), signature.end());
    // Each of these means the loop cannot make progress here: a degrading
    // cycle with no sizable queue, a zero deficit against the pristine
    // marking, or a cycle we already constrained. All are impossible while
    // the invariants hold, so they route to the always-correct fallback.
    if (cycle_channels.empty() || deficit <= 0 ||
        !seen_cycles.insert(std::move(signature)).second) {
      return run_fallback(lis, theta_ideal, theta_practical, options, stats);
    }

    // Grow the instance: one new cycle, sets keyed by channel with
    // first-sighting indices (so previous weights stay aligned).
    const int cycle_index = static_cast<int>(td.deficits.size());
    td.deficits.push_back(deficit);
    for (const ChannelId ch : cycle_channels) {
      const auto [it, inserted] =
          set_of_channel.emplace(ch, static_cast<int>(target_channels.size()));
      if (inserted) {
        target_channels.push_back(ch);
        td.set_members.emplace_back();
      }
      td.set_members[static_cast<std::size_t>(it->second)].push_back(cycle_index);
    }
    ++stats.cycles_generated;
    // Without the SCC collapse, `target` IS `lis`, so the cycle's place ids
    // are valid in the pristine d[G] — record it as certificate evidence.
    if (!build_target.collapsed_used) report.lazy_cycles.push_back(critical.cycle);

    // Re-solve: warm heuristic upper bound, then exact with the previous
    // optimum as a lower bound (valid — the constraint set only grew).
    const TdSolution upper = solve_heuristic_incremental(td, weights, options.heuristic);
    ExactOptions exact_options = options.exact;
    exact_options.min_total = proven_total;
    const ExactResult solved = solve_exact(td, upper, exact_options);
    nodes_explored += solved.nodes_explored;
    if (solved.cancelled) {
      report.problem.cancelled = true;
      report.lazy->howard_warm_restarts = mcm.stats().warm_restarts - warm_before;
      return report;
    }
    if (!solved.solution) {
      // Node/time budget cut the sub-solve off — deterministic for node
      // budgets, so the fallback (and thus the response) stays a pure
      // function of the request.
      return run_fallback(lis, theta_ideal, theta_practical, options, stats);
    }
    weights = solved.solution->weights;
    proven_total = solved.solution->total;

    // Re-marking: every sized queue gets pristine tokens + its weight.
    for (std::size_t s = 0; s < weights.size(); ++s) {
      const mg::PlaceId qp =
          queue_place_by_channel[static_cast<std::size_t>(target_channels[s])];
      work.set_tokens(qp, expansion.graph.tokens(qp) + weights[s]);
    }
  }
  if (!converged) {
    return run_fallback(lis, theta_ideal, theta_practical, options, stats);
  }

  report.problem.problem_cycles = td.num_cycles();
  report.problem.channels.reserve(target_channels.size());
  for (const ChannelId ch : target_channels) {
    report.problem.channels.push_back(build_target.origin(ch));
  }
  report.lazy->howard_warm_restarts = mcm.stats().warm_restarts - warm_before;

  SolverOutcome outcome;
  outcome.weights = std::move(weights);
  outcome.total_extra_tokens = proven_total;
  outcome.finished = true;
  outcome.nodes_explored = nodes_explored;
  outcome.cpu_ms = timer.elapsed_ms();
  report.exact = std::move(outcome);

  report.sized = apply_solution(lis, report.problem, report.exact->weights);
  if (options.verify) {
    report.achieved_mst = lis::practical_mst(report.sized);
  }
  return report;
}

}  // namespace lid::core
