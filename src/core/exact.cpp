#include "core/exact.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace lid::core {
namespace {

/// Decision-problem search: can `budget` unit tokens cover all residual
/// deficits? Canonical enumeration: always work on the lowest-index
/// unsatisfied cycle and place its tokens on covering sets in non-decreasing
/// order, so each multiset of placements is explored once.
class CoverSearch {
 public:
  CoverSearch(const TdInstance& instance, const ExactOptions& options, ExactResult& stats)
      : instance_(instance),
        covering_(instance.covering_sets()),
        options_(options),
        deadline_(options.timeout_ms),
        stats_(stats) {
    max_cover_ = 1;
    for (const auto& members : instance_.set_members) {
      max_cover_ = std::max(max_cover_, static_cast<std::int64_t>(members.size()));
    }
  }

  /// Returns the weight assignment when coverable within `budget`.
  std::optional<std::vector<std::int64_t>> run(std::int64_t budget) {
    residual_ = instance_.deficits;
    weights_.assign(instance_.num_sets(), 0);
    total_residual_ = std::accumulate(residual_.begin(), residual_.end(), std::int64_t{0});
    cut_off_ = false;
    if (search(budget)) return weights_;
    return std::nullopt;
  }

  [[nodiscard]] bool cut_off() const { return cut_off_; }

 private:
  bool search(std::int64_t budget) {
    // The node budget is checked at every node so the cut-off point is a
    // pure function of the instance (deterministic responses); the clock
    // and the cancel token are polled on a stride to keep the hot path
    // cheap — a cancelled solve stops within 1024 nodes of the request.
    ++stats_.nodes_explored;
    if (options_.max_nodes > 0 && stats_.nodes_explored >= options_.max_nodes) {
      cut_off_ = true;
      // The node cap and an outstanding cancel can trip on the same node;
      // poll the token here too, else a request that is both budgeted and
      // cancelled under-reports `cancelled`. The cut-off point is still
      // exactly max_nodes — the extra poll changes no control flow.
      if (options_.cancel.cancelled()) stats_.cancelled = true;
    } else if (stats_.nodes_explored % 1024 == 0) {
      if (options_.cancel.cancelled()) {
        cut_off_ = true;
        stats_.cancelled = true;
      } else if (deadline_.expired()) {
        cut_off_ = true;
      }
    }
    if (cut_off_) return false;

    // Find the lowest-index unsatisfied cycle and the pruning bounds.
    int target = -1;
    std::int64_t max_residual = 0;
    for (std::size_t c = 0; c < residual_.size(); ++c) {
      if (residual_[c] > 0) {
        if (target < 0) target = static_cast<int>(c);
        max_residual = std::max(max_residual, residual_[c]);
      }
    }
    if (target < 0) return true;  // all satisfied

    // Each token serves one cycle's residual at best, and at most max_cover_
    // cycles at once: two lower bounds on the tokens still required.
    if (max_residual > budget) return false;
    if ((total_residual_ + max_cover_ - 1) / max_cover_ > budget) return false;

    return place_for_cycle(static_cast<std::size_t>(target), 0, budget);
  }

  bool place_for_cycle(std::size_t cycle, std::size_t start, std::int64_t budget) {
    if (cut_off_) return false;
    if (residual_[cycle] <= 0) return search(budget);
    if (budget == 0) return false;
    const auto& sets = covering_[cycle];
    for (std::size_t i = start; i < sets.size(); ++i) {
      const auto s = static_cast<std::size_t>(sets[i]);
      apply(s, +1);
      if (place_for_cycle(cycle, i, budget - 1)) return true;
      apply(s, -1);
      if (cut_off_) return false;
    }
    return false;
  }

  void apply(std::size_t s, int delta) {
    weights_[s] += delta;
    for (const int c : instance_.set_members[s]) {
      const auto ci = static_cast<std::size_t>(c);
      const std::int64_t before = std::max<std::int64_t>(residual_[ci], 0);
      residual_[ci] -= delta;
      const std::int64_t after = std::max<std::int64_t>(residual_[ci], 0);
      total_residual_ += after - before;  // track the sum of positive residuals
    }
  }

  const TdInstance& instance_;
  const std::vector<std::vector<int>> covering_;
  const ExactOptions& options_;
  util::Deadline deadline_;
  ExactResult& stats_;

  std::vector<std::int64_t> residual_;
  std::vector<std::int64_t> weights_;
  std::int64_t total_residual_ = 0;
  std::int64_t max_cover_ = 1;
  bool cut_off_ = false;
};

}  // namespace

ExactResult solve_exact(const TdInstance& instance, const TdSolution& upper_bound,
                        const ExactOptions& options) {
  LID_ENSURE(instance.is_feasible(upper_bound.weights), "solve_exact: upper bound infeasible");
  util::Timer timer;
  ExactResult result;

  if (instance.num_cycles() == 0) {
    result.solution = TdSolution{std::vector<std::int64_t>(instance.num_sets(), 0), 0};
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  // Lower bound: the largest single deficit, and the counting bound.
  std::int64_t max_deficit = 0;
  std::int64_t total_deficit = 0;
  for (const std::int64_t d : instance.deficits) {
    max_deficit = std::max(max_deficit, d);
    total_deficit += d;
  }
  std::int64_t max_cover = 1;
  for (const auto& members : instance.set_members) {
    max_cover = std::max(max_cover, static_cast<std::int64_t>(members.size()));
  }
  std::int64_t lo = std::max({max_deficit, (total_deficit + max_cover - 1) / max_cover,
                              options.min_total});
  std::int64_t hi = upper_bound.total;

  CoverSearch search(instance, options, result);
  TdSolution best = upper_bound;

  // Binary search the minimum feasible budget, as in the paper.
  bool proven = true;
  while (lo < hi) {
    if (options.cancel.cancelled()) {
      // Probe boundary: a token that fired between probes (or arrived
      // already expired) stops the search before more work starts.
      result.cancelled = true;
      proven = false;
      break;
    }
    const std::int64_t mid = lo + (hi - lo) / 2;
    const auto assignment = search.run(mid);
    if (search.cut_off()) {
      proven = false;
      break;
    }
    if (assignment) {
      best.weights = *assignment;
      best.total = std::accumulate(assignment->begin(), assignment->end(), std::int64_t{0});
      hi = best.total;  // feasible with best.total <= mid tokens
    } else {
      lo = mid + 1;
    }
  }

  result.elapsed_ms = timer.elapsed_ms();
  result.cut_off = !proven;
  if (proven) {
    LID_ASSERT(instance.is_feasible(best.weights), "exact solution infeasible");
    result.solution = best;
  }
  return result;
}

}  // namespace lid::core
