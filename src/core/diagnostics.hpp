// Human-readable throughput diagnostics: which cycle of the doubled graph
// limits a LIS's throughput, expressed in terms of the netlist's cores,
// relay stations and queue backedges. Used by the command-line tool and the
// examples; the underlying critical cycle comes from Howard's algorithm.
#pragma once

#include <string>
#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// One hop of the critical cycle.
struct CriticalHop {
  /// "A -> rs0" / "B ~> A (queue backedge)" style description.
  std::string description;
  /// Channel the hop belongs to.
  lis::ChannelId channel = graph::kInvalidEdge;
  /// True for backpressure hops.
  bool backward = false;
  /// Initial tokens on the hop.
  std::int64_t tokens = 0;
};

/// Why (and how much) a practical LIS underperforms its ideal MST.
struct DegradationReport {
  util::Rational theta_ideal;
  util::Rational theta_practical;
  bool degraded = false;
  /// The critical cycle of d[G] (empty when the doubled graph is acyclic).
  std::vector<CriticalHop> critical_cycle;
  /// The same cycle as raw place ids of lis::expand_doubled — the witness
  /// form consumers (lint, certificates) can re-check without re-solving.
  std::vector<std::int64_t> cycle_place_ids;
  std::int64_t cycle_tokens = 0;
  std::int64_t cycle_places = 0;

  /// Multi-line rendering for logs / CLI output.
  [[nodiscard]] std::string to_string() const;
};

/// Analyzes `lis` and reports its limiting cycle.
DegradationReport explain_degradation(const lis::LisGraph& lis);

}  // namespace lid::core
