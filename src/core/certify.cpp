#include "core/certify.hpp"

#include <utility>
#include <vector>

#include "mg/mcm.hpp"
#include "util/check.hpp"

namespace lid::core {
namespace {

using util::Rational;

/// Optimality witness for one expansion, from the Howard evidence pass.
/// By convention an acyclic expansion carries theta = 1 (the MST cap); the
/// checker ignores the value and instead demands that every place crosses
/// label classes.
verify::McmWitness witness_for(const mg::MarkedGraph& g) {
  mg::McmEvidence ev = mg::mcm_evidence(g);
  verify::McmWitness w;
  if (ev.critical) {
    w.acyclic = false;
    w.theta = ev.critical->mean;
    w.critical.mean = ev.critical->mean;
    w.critical.places.reserve(ev.critical->cycle.size());
    for (const mg::PlaceId p : ev.critical->cycle) {
      w.critical.places.push_back(static_cast<std::int64_t>(p));
    }
  } else {
    w.acyclic = true;
    w.theta = Rational(1);
  }
  w.component = std::move(ev.component);
  w.component_cyclic = std::move(ev.component_cyclic);
  w.lambda = std::move(ev.lambda);
  w.potential = std::move(ev.potential);
  return w;
}

}  // namespace

verify::Certificate certify_analysis(const lis::LisGraph& lis) {
  verify::Certificate cert;
  cert.kind = verify::Kind::kAnalyze;
  cert.fingerprint = verify::fingerprint(lis);
  cert.ideal = witness_for(lis::expand_ideal(lis).graph);
  cert.practical = witness_for(lis::expand_doubled(lis).graph);
  return cert;
}

verify::Certificate certify_sizing(const lis::LisGraph& original, const QsReport& report) {
  verify::Certificate cert;
  cert.kind = verify::Kind::kSizing;
  cert.fingerprint = verify::fingerprint(original);
  cert.ideal = witness_for(lis::expand_ideal(original).graph);
  cert.target = report.problem.theta_target;

  // The applied sizing, diffed channel by channel: valid for whichever
  // solver produced report.sized (exact, heuristic, or none needed).
  LID_ASSERT(report.sized.num_channels() == original.num_channels(),
             "certify_sizing: report does not belong to this netlist");
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(original.num_channels()); ++ch) {
    const std::int64_t extra = static_cast<std::int64_t>(report.sized.channel(ch).queue_capacity) -
                               original.channel(ch).queue_capacity;
    LID_ASSERT(extra >= 0, "certify_sizing: sized netlist shrank a queue");
    if (extra > 0) {
      cert.weights.push_back({static_cast<std::int64_t>(ch), extra});
      cert.total += extra;
    }
  }

  // Lower-bound section: only when the lazy solve converged on the pristine
  // (uncollapsed) graph, so the recorded cycles' place ids are valid in the
  // d[G] the checker re-expands. A fallback or collapse leaves the section
  // out (constraint_count stays -1).
  if (report.lazy.has_value() && !report.lazy->fell_back && !report.problem.scc_collapsed) {
    cert.constraint_count = static_cast<std::int64_t>(report.lazy_cycles.size());
    const lis::Expansion pristine = lis::expand_doubled(original);
    for (const std::vector<mg::PlaceId>& cycle : report.lazy_cycles) {
      verify::DeficitConstraint dc;
      std::int64_t tokens = 0;
      dc.cycle.reserve(cycle.size());
      for (const mg::PlaceId p : cycle) {
        dc.cycle.push_back(static_cast<std::int64_t>(p));
        tokens += pristine.graph.tokens(p);
        const lis::ChannelId ch = pristine.place_channel[static_cast<std::size_t>(p)];
        if (pristine.queue_place(ch) == p) dc.channels.push_back(static_cast<std::int64_t>(ch));
      }
      dc.deficit =
          cycle_deficit(tokens, static_cast<std::int64_t>(cycle.size()), cert.target);
      cert.constraints.push_back(std::move(dc));
    }
  }

  cert.achieved = witness_for(lis::expand_doubled(report.sized).graph);
  return cert;
}

}  // namespace lid::core
