// Building a Token-Deficit instance from a LIS — the front half of the
// queue-sizing pipeline (Sec. VII-A).
//
// Given a LIS, we expand the doubled marked graph d[G], enumerate its
// elementary cycles, keep the *problematic* ones (mean below the ideal MST
// θ(G); by paper simplification 1 these must contain at least one backedge
// and one relay-station output place), and record, per cycle, its token
// deficit and the input-queue backedges lying on it — the only places a
// designer can add capacity to.
//
// When the LIS is a DAG of SCCs with relay stations only on inter-SCC
// channels (paper simplification 4), the builder first collapses every SCC
// to a single core, which shrinks the cycle count by orders of magnitude
// while preserving each collapsed cycle's deficit exactly (intra-SCC path
// segments contribute tokens equal to their length at q = 1). Note that the
// collapse also restricts the sizable queues to the inter-SCC channels — as
// the paper prescribes ("adding tokens to the inter-SCC edges only") — so
// its optimum is an upper bound on the full instance's optimum, which may
// exploit intra-SCC queues shared between many degrading cycles. It always
// restores the ideal MST.
//
// DEPRECATED as a public entry point: new call sites should use
// lid::size_queues in src/lid_api.hpp, or engine::AnalysisCache when
// stacking analyses. This header remains the implementation layer those
// build on.
#pragma once

#include <cstdint>
#include <vector>

#include "core/token_deficit.hpp"
#include "lis/lis_graph.hpp"
#include "util/cancel.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// Options for instance construction.
struct QsBuildOptions {
  /// Hard cap on enumerated cycles; 0 = unlimited. When hit, `truncated` is
  /// set and the instance covers only the cycles found so far.
  std::size_t max_cycles = 2'000'000;
  /// Apply the SCC-collapse fast path when the topology allows it.
  bool allow_scc_collapse = true;
  /// Target throughput the sizing must reach. Zero (the default) means the
  /// ideal MST θ(G); a smaller positive target yields a cheaper partial
  /// repair (deficits are computed against it instead). Values above θ(G)
  /// are clamped to θ(G) — backpressure can never beat the ideal.
  util::Rational target_mst = util::Rational(0);
  /// Cooperative cancellation for the enumeration phase. A fired token stops
  /// the build early with `cancelled` set; the partial instance must not be
  /// served as an answer (it is timing-dependent). The default never cancels.
  util::CancelToken cancel;
};

/// A queue-sizing problem: the TD instance plus the channel map.
struct QsProblem {
  /// Ideal MST θ(G) of the LIS (infinite queues).
  util::Rational theta_ideal;
  /// Practical MST θ(d[G]) with the current queue capacities.
  util::Rational theta_practical;
  /// The throughput the instance's deficits target (== theta_ideal unless a
  /// lower target was requested).
  util::Rational theta_target;
  /// TD set index -> channel whose input queue that set sizes.
  std::vector<lis::ChannelId> channels;
  /// The TD instance (one element per problematic cycle).
  TdInstance td;

  // --- diagnostics ---
  /// Cycles enumerated in the (possibly collapsed) doubled graph.
  std::size_t cycles_enumerated = 0;
  /// Cycles with a positive deficit (before TD simplification).
  std::size_t problem_cycles = 0;
  /// True when cycle enumeration hit the cap.
  bool truncated = false;
  /// True when the cancel token stopped enumeration before it finished.
  bool cancelled = false;
  /// True when the SCC-collapse fast path was used.
  bool scc_collapsed = false;

  /// True when the practical MST falls short of the (possibly lowered)
  /// target — i.e. the TD instance has work to do.
  [[nodiscard]] bool has_degradation() const { return theta_practical < theta_target; }
};

/// Builds the queue-sizing problem for `lis`.
QsProblem build_qs_problem(const lis::LisGraph& lis, const QsBuildOptions& options = {});

/// Like build_qs_problem, but reuses already-computed θ(G) and θ(d[G])
/// (e.g. from an engine::AnalysisCache) instead of expanding the netlist two
/// extra times. The thetas must be those of `lis` itself.
QsProblem build_qs_problem_with_mst(const lis::LisGraph& lis, const util::Rational& theta_ideal,
                                    const util::Rational& theta_practical,
                                    const QsBuildOptions& options = {});

/// Applies a TD solution: channel `problem.channels[s]` gains
/// `weights[s]` extra queue slots. Returns the modified copy.
lis::LisGraph apply_solution(const lis::LisGraph& lis, const QsProblem& problem,
                             const std::vector<std::int64_t>& weights);

/// True when relay stations appear only on channels between different SCCs
/// of the LIS netlist — the precondition of the SCC-collapse fast path.
bool relay_stations_only_between_sccs(const lis::LisGraph& lis);

/// The graph a TD instance is built against: the original netlist, or its
/// SCC-collapsed form when simplification 4 applies. Shared by the eager
/// builder and the lazy constraint-generation driver so both size exactly
/// the same graph (and therefore agree on deficits and totals).
struct QsBuildTarget {
  /// True when the collapse was both allowed and profitable.
  bool collapsed_used = false;
  /// The collapsed netlist; meaningful only when `collapsed_used`.
  lis::LisGraph collapsed;
  /// Collapsed channel -> original channel; meaningful only when
  /// `collapsed_used`.
  std::vector<lis::ChannelId> channel_origin;

  /// The graph to expand and size (`original` is the netlist this target was
  /// selected from).
  [[nodiscard]] const lis::LisGraph& graph(const lis::LisGraph& original) const {
    return collapsed_used ? collapsed : original;
  }
  /// Maps a channel of graph() back to the original netlist numbering.
  [[nodiscard]] lis::ChannelId origin(lis::ChannelId ch) const {
    return collapsed_used ? channel_origin[static_cast<std::size_t>(ch)] : ch;
  }
};

/// Decides whether the SCC-collapse fast path applies (see the header
/// comment for the exact conditions) and builds the collapsed netlist if so.
QsBuildTarget select_build_target(const lis::LisGraph& lis, const QsBuildOptions& options);

/// Minimum extra tokens that bring a cycle with `tokens` tokens over `places`
/// places up to mean `theta`: the smallest D >= 0 with
/// (tokens + D) / places >= theta.
std::int64_t cycle_deficit(std::int64_t tokens, std::int64_t places, const util::Rational& theta);

}  // namespace lid::core
