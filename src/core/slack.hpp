// Wire-pipelining slack analysis.
//
// Relay stations are inserted on channels whose wires are too long for the
// target clock period (Sec. I); Sec. VI shows an insertion can silently
// lower the *ideal* MST when the channel sits on a tight feedback loop. This
// module computes, per channel, how many relay stations it can absorb before
// the ideal MST drops — the designer-facing "how much pipelining headroom do
// I have" question, and the structural reason the Fig. 15 counterexample has
// no relay-station repair (its helpful channels have zero slack).
#pragma once

#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// Pipelining headroom of one channel.
struct ChannelSlack {
  lis::ChannelId channel = graph::kInvalidEdge;
  /// Maximum relay stations addable to this channel (beyond those present)
  /// without lowering the ideal MST below `target`. kUnbounded when the
  /// channel lies on no forward cycle.
  int slack = 0;
  /// The ideal MST after adding slack + 1 stations (what you would lose).
  util::Rational mst_if_exceeded;

  static constexpr int kUnbounded = -1;
};

/// Per-channel slack against the CURRENT ideal MST of `lis`.
std::vector<ChannelSlack> channel_slacks(const lis::LisGraph& lis);

/// Per-channel slack against an arbitrary target throughput. Channels not on
/// any forward cycle report kUnbounded. `target` must be positive.
std::vector<ChannelSlack> channel_slacks(const lis::LisGraph& lis,
                                         const util::Rational& target);

}  // namespace lid::core
