// Floorplan-driven relay-station insertion.
//
// In the paper's design flow, relay-station locations are "selected only
// after floorplanning has been carried out" (Sec. IX): a channel whose
// routed wire is longer than the distance a signal travels in one clock
// period must be pipelined with ceil(length / reach) - 1 stations. This
// module models that flow: place cores on a grid, measure Manhattan wire
// lengths, derive the relay stations each channel needs for a given clock
// reach, and hand the (possibly degraded) system to the repair machinery.
#pragma once

#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace lid::core {

/// A core placement: one grid coordinate per core.
struct Placement {
  struct Point {
    int x = 0;
    int y = 0;
  };
  std::vector<Point> position;

  /// Manhattan wire length of a channel under this placement.
  [[nodiscard]] int wire_length(const lis::LisGraph& lis, lis::ChannelId ch) const;
};

/// Places the cores uniformly at random on a side × side grid (at most one
/// core per cell; requires side² >= cores).
Placement random_placement(const lis::LisGraph& lis, int side, util::Rng& rng);

/// Places the cores SCC by SCC along a boustrophedon (snake) scan of the
/// grid, so each strongly connected cluster occupies a compact region —
/// what a timing-driven floorplanner does with tightly communicating logic.
/// Intra-SCC wires stay short (few or no relay stations, preserving the
/// ideal MST) while inter-SCC wires span cluster distances and pick up the
/// pipelining. Member order within an SCC is shuffled by `rng`.
Placement clustered_placement(const lis::LisGraph& lis, int side, util::Rng& rng);

/// Relay stations channel `ch` needs so every wire segment fits in one clock
/// period of `reach` grid units: ceil(length / reach) - 1 (zero-length wires
/// need none).
int required_relay_stations(int wire_length, int reach);

/// Returns a copy of `lis` with every channel's relay-station count set to
/// what the placement and clock reach require. `reach` must be positive.
lis::LisGraph apply_floorplan(const lis::LisGraph& lis, const Placement& placement, int reach);

}  // namespace lid::core
