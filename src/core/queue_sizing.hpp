// Top-level queue-sizing driver (Sec. VII): build the TD instance, simplify,
// solve with the heuristic and/or the exact algorithm, and apply the result
// to the netlist. The returned report carries everything the paper's
// experiment tables need (solution sizes, CPU times, completion flags).
//
// DEPRECATED as a public entry point: new call sites should use
// lid::size_queues in src/lid_api.hpp (Result<T>-based, opaque handles).
// The batch engine reaches `size_queues_on_problem` directly to reuse a
// cached cycle enumeration; this header remains the implementation layer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/exact.hpp"
#include "core/heuristic.hpp"
#include "core/qs_problem.hpp"
#include "core/token_deficit.hpp"
#include "lis/lis_graph.hpp"

namespace lid::core {

/// Which solver(s) to run.
enum class QsMethod {
  kHeuristic,
  kExact,
  kBoth,
  /// Lazy critical-cycle constraint generation (src/core/lazy_sizing.hpp):
  /// exact-quality results without up-front cycle enumeration, falling back
  /// to the full kBoth pipeline when progress stalls.
  kLazy,
};

/// Diagnostics of a lazy (cutting-plane) solve.
struct LazyStats {
  /// Separation rounds run (Howard solve + constraint add + re-solve).
  std::int64_t iterations = 0;
  /// Critical-cycle constraints generated (== TD cycles in the final
  /// sub-instance when the solve converged).
  std::int64_t cycles_generated = 0;
  /// Warm-started Howard solves performed by this run's MCM workspace.
  std::int64_t howard_warm_restarts = 0;
  /// True when the lazy loop stalled (duplicate cycle, budget cut-off,
  /// unsizable cycle) and the bounded full-enumeration pipeline took over.
  bool fell_back = false;
};

/// Full configuration of a queue-sizing run.
struct QsOptions {
  QsMethod method = QsMethod::kHeuristic;
  QsBuildOptions build;
  /// Run the TD simplification pass before solving (paper Sec. VII-A).
  bool simplify = true;
  SimplifyOptions simplify_options;
  HeuristicOptions heuristic;
  ExactOptions exact;
  /// Re-verify the final MST on the sized netlist (cheap; on by default).
  bool verify = true;
};

/// One solver's outcome.
struct SolverOutcome {
  /// Extra tokens per candidate channel (problem.channels order).
  std::vector<std::int64_t> weights;
  std::int64_t total_extra_tokens = 0;
  double cpu_ms = 0.0;
  /// Exact solver only: true when it proved optimality within its budget.
  bool finished = true;
  /// Exact solver only: true when the cancel token (not the node/time
  /// budget) ended the search.
  bool cancelled = false;
  /// Exact solver only: search nodes explored — partial-progress evidence
  /// when the solve was cut off or cancelled.
  std::int64_t nodes_explored = 0;
};

/// Result of queue sizing.
struct QsReport {
  QsProblem problem;
  std::optional<SolverOutcome> heuristic;
  std::optional<SolverOutcome> exact;
  /// The sized netlist from the best available solution (exact when finished,
  /// else heuristic).
  lis::LisGraph sized;
  /// MST of `sized` (filled when options.verify).
  util::Rational achieved_mst;
  /// Present when the lazy solver ran (method kLazy), including when it fell
  /// back to full enumeration.
  std::optional<LazyStats> lazy;
  /// The lazy solver's generating critical cycles, as place ids of the
  /// *pristine* (unsized, uncollapsed) d[G]. Filled only when the lazy solve
  /// converged without the SCC-collapse fast path — exactly the runs whose
  /// constraint set can be embedded in a sizing certificate
  /// (core::certify_sizing). One entry per generated constraint, in
  /// generation order (matches problem.td.deficits when not simplified).
  std::vector<std::vector<mg::PlaceId>> lazy_cycles;
};

/// Runs the queue-sizing pipeline on `lis`.
QsReport size_queues(const lis::LisGraph& lis, const QsOptions& options = {});

/// Like size_queues, but starts from an already-built problem so batch
/// drivers (engine::AnalysisCache) can share one cycle enumeration between
/// stacked analyses. `problem` must have been built from `lis`;
/// options.build is ignored.
QsReport size_queues_on_problem(const lis::LisGraph& lis, const QsProblem& problem,
                                const QsOptions& options = {});

}  // namespace lid::core
