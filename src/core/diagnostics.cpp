#include "core/diagnostics.hpp"

#include <sstream>

#include "mg/mcm.hpp"
#include "util/check.hpp"

namespace lid::core {

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << "ideal MST θ(G) = " << theta_ideal << ", practical MST θ(d[G]) = " << theta_practical;
  if (!degraded) {
    os << " — no backpressure degradation\n";
    return os.str();
  }
  os << " — DEGRADED\n";
  os << "critical cycle (" << cycle_tokens << " tokens / " << cycle_places << " places):\n";
  for (const CriticalHop& hop : critical_cycle) {
    os << "  " << (hop.backward ? "[back] " : "[fwd]  ") << hop.description << "  (tokens "
       << hop.tokens << ")\n";
  }
  return os.str();
}

DegradationReport explain_degradation(const lis::LisGraph& lis) {
  DegradationReport report;
  report.theta_ideal = lis::ideal_mst(lis);

  // One Howard solve yields both the practical MST and its critical cycle —
  // a separate mg::mst() pass would redo the same minimum-cycle-mean work.
  const lis::Expansion expansion = lis::expand_doubled(lis);
  const auto critical = mg::min_cycle_mean_howard(expansion.graph);
  if (!critical) {
    // Acyclic doubled graph: single channel-free core; MST stays at 1.
    report.theta_practical = util::Rational(1);
    report.degraded = report.theta_practical < report.theta_ideal;
    return report;
  }
  LID_ENSURE(critical->mean.num() != 0,
             "explain_degradation: token-free cycle (deadlocked doubled graph)");
  report.theta_practical = util::Rational::min(util::Rational(1), critical->mean);
  report.degraded = report.theta_practical < report.theta_ideal;

  report.cycle_places = static_cast<std::int64_t>(critical->cycle.size());
  report.cycle_tokens = expansion.graph.cycle_tokens(critical->cycle);
  report.cycle_place_ids.reserve(critical->cycle.size());
  for (const mg::PlaceId p : critical->cycle) report.cycle_place_ids.push_back(p);
  for (const mg::PlaceId p : critical->cycle) {
    CriticalHop hop;
    hop.channel = expansion.place_channel[static_cast<std::size_t>(p)];
    hop.backward = expansion.graph.place_kind(p) == mg::PlaceKind::kBackward;
    hop.tokens = expansion.graph.tokens(p);
    std::ostringstream os;
    os << expansion.graph.transition_name(expansion.graph.producer(p))
       << (hop.backward ? " ~> " : " -> ")
       << expansion.graph.transition_name(expansion.graph.consumer(p));
    if (hop.backward && p == expansion.queue_place(hop.channel)) {
      os << " (queue backedge, capacity " << lis.channel(hop.channel).queue_capacity << ")";
    }
    hop.description = os.str();
    report.critical_cycle.push_back(std::move(hop));
  }
  return report;
}

}  // namespace lid::core
