#include "core/rate_safety.hpp"

#include <algorithm>
#include <sstream>

#include "graph/scc.hpp"

namespace lid::core {

std::string RateSafetyReport::to_string(const lis::LisGraph& lis) const {
  std::ostringstream os;
  os << sccs.size() << " strongly connected component(s):\n";
  for (std::size_t c = 0; c < sccs.size(); ++c) {
    os << "  SCC " << c << " (";
    for (std::size_t i = 0; i < sccs[c].cores.size(); ++i) {
      if (i > 0) os << ", ";
      if (i == 4 && sccs[c].cores.size() > 5) {
        os << "... " << sccs[c].cores.size() << " cores";
        break;
      }
      os << lis.core_name(sccs[c].cores[i]);
    }
    os << "): rate " << sccs[c].rate << ", effective " << sccs[c].effective_rate << "\n";
  }
  if (hazards.empty()) {
    os << "rate-safe: no faster component feeds a slower one\n";
  } else {
    os << hazards.size() << " rate hazard(s) — the ideal system would accumulate "
       << "tokens unboundedly (Sec. III-C):\n";
    for (const RateHazard& h : hazards) {
      const lis::Channel& ch = lis.channel(h.channel);
      os << "  " << lis.core_name(ch.src) << " -> " << lis.core_name(ch.dst) << ": producer "
         << h.producer_rate << " > consumer " << h.consumer_rate << "\n";
    }
  }
  return os.str();
}

RateSafetyReport analyze_rate_safety(const lis::LisGraph& lis) {
  RateSafetyReport report;
  const graph::SccPartition part = graph::scc(lis.structure());
  report.scc_of = part.comp_of;
  report.sccs.resize(static_cast<std::size_t>(part.count));

  // Per-SCC rate: the ideal MST of the member-induced sub-netlist.
  for (int c = 0; c < part.count; ++c) {
    SccRate& scc = report.sccs[static_cast<std::size_t>(c)];
    scc.cores = part.members[static_cast<std::size_t>(c)];
    lis::LisGraph sub;
    std::vector<lis::CoreId> remap(lis.num_cores(), graph::kInvalidNode);
    for (const lis::CoreId v : scc.cores) {
      remap[static_cast<std::size_t>(v)] = sub.add_core(lis.core_name(v));
      sub.set_core_latency(remap[static_cast<std::size_t>(v)], lis.core_latency(v));
    }
    for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis.num_channels()); ++ch) {
      const lis::Channel& channel = lis.channel(ch);
      if (part.comp_of[static_cast<std::size_t>(channel.src)] != c ||
          part.comp_of[static_cast<std::size_t>(channel.dst)] != c) {
        continue;
      }
      sub.add_channel(remap[static_cast<std::size_t>(channel.src)],
                      remap[static_cast<std::size_t>(channel.dst)], channel.relay_stations,
                      channel.queue_capacity);
    }
    scc.rate = lis::ideal_mst(sub);
    scc.effective_rate = scc.rate;
  }

  // Effective rates: propagate upstream throttling in topological order.
  // Tarjan indices are reverse-topological (edge (u, v) inter-SCC implies
  // comp_of[u] > comp_of[v]), so descending index order is topological.
  for (int c = part.count - 1; c >= 0; --c) {
    // Find predecessors of c and fold their effective rates in.
    for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis.num_channels()); ++ch) {
      const lis::Channel& channel = lis.channel(ch);
      const int from = part.comp_of[static_cast<std::size_t>(channel.src)];
      const int to = part.comp_of[static_cast<std::size_t>(channel.dst)];
      if (to != c || from == to) continue;
      auto& scc = report.sccs[static_cast<std::size_t>(c)];
      scc.effective_rate = util::Rational::min(
          scc.effective_rate, report.sccs[static_cast<std::size_t>(from)].effective_rate);
    }
  }

  // Hazards: a producer whose effective rate exceeds what the consumer can
  // absorb (its effective rate already folds every upstream throttle in).
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis.num_channels()); ++ch) {
    const lis::Channel& channel = lis.channel(ch);
    const int from = part.comp_of[static_cast<std::size_t>(channel.src)];
    const int to = part.comp_of[static_cast<std::size_t>(channel.dst)];
    if (from == to) continue;
    const util::Rational producer = report.sccs[static_cast<std::size_t>(from)].effective_rate;
    const util::Rational consumer = report.sccs[static_cast<std::size_t>(to)].effective_rate;
    if (producer > consumer) {
      report.hazards.push_back({ch, producer, consumer});
    }
  }
  return report;
}

}  // namespace lid::core
