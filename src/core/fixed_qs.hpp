// Fixed queue sizing (Sec. IV): set every queue in the system to the same
// capacity q and measure the resulting practical MST. The paper proves q = 1
// suffices for trees and cactus-SCC topologies, that q = r + 1 (r = total
// relay stations) always suffices, and measures how quickly moderate fixed q
// approaches the ideal MST on general topologies (Fig. 17).
#pragma once

#include <vector>

#include "lis/lis_graph.hpp"
#include "util/rational.hpp"

namespace lid::core {

/// MST of `lis` with every queue capacity set to q.
util::Rational fixed_qs_mst(const lis::LisGraph& lis, int q);

/// One point of a fixed-QS sweep.
struct FixedQsPoint {
  int q = 0;
  util::Rational mst;
  /// mst / ideal, as a double in [0, 1].
  double fraction_of_ideal = 0.0;
};

/// Sweeps q = 1..q_max (Fig. 17's x-axis) against the ideal MST.
std::vector<FixedQsPoint> fixed_qs_sweep(const lis::LisGraph& lis, int q_max);

/// Smallest uniform q in [1, q_limit] whose MST reaches the ideal MST, or 0
/// when none does. The paper guarantees q = r + 1 always works, so passing
/// q_limit >= total_relay_stations + 1 always finds one.
int smallest_sufficient_fixed_q(const lis::LisGraph& lis, int q_limit);

}  // namespace lid::core
