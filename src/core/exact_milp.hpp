// Queue sizing as a mixed-integer linear program — the Lu–Koh baseline
// ([35], [36]) the paper explicitly forgoes ("we forgo the popular MILP
// approach to these hard problems", Sec. II). The Token-Deficit instance is
// a covering program:
//
//     minimize   Σ_s w_s
//     subject to Σ_{s ∋ c} w_s >= deficit(c)   for every cycle c,
//                w integral, w >= 0,
//
// solved with the exact-rational branch-and-bound ILP of src/milp. Exists to
// make the paper's methodological comparison concrete; agrees with the
// combinatorial exact solvers everywhere.
#pragma once

#include "core/exact.hpp"
#include "core/token_deficit.hpp"

namespace lid::core {

/// Solves the TD instance via the MILP formulation. Same contract as
/// solve_exact(); `upper_bound` is used only as a sanity check.
ExactResult solve_exact_milp(const TdInstance& instance, const TdSolution& upper_bound,
                             const ExactOptions& options = {});

}  // namespace lid::core
