// The Token-Deficit (TD) problem — the paper's abstraction of queue sizing
// (Sec. VII-A).
//
// An instance has a universe of *cycles*, each with a nonnegative deficit
// (extra tokens the cycle needs to stop degrading throughput), and a family
// of *sets*, one per sizable queue backedge, each containing the cycles that
// backedge lies on. A solution assigns a weight (extra queue slots) to every
// set so that each cycle's covering weights sum to at least its deficit; the
// objective is the minimum total weight. TD is NP-complete (reduction from
// dominating set, Sec. VII-A), which is why the library ships both the
// paper's heuristic and an exact branch-and-bound.
//
// This header also implements the paper's simplification steps:
//   (1) cycles with no deficit are dropped (done by the instance builder),
//   (2) a set contained in another set is omitted,
//   (3) a cycle covered by exactly one set commits its deficit to that set,
// plus an optional extra reduction (dominated-cycle elimination) that the
// ablation bench can toggle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace lid::core {

/// A Token-Deficit instance.
struct TdInstance {
  /// deficits[c] > 0 — extra tokens cycle c needs.
  std::vector<std::int64_t> deficits;
  /// set_members[s] — sorted cycle indices the set s covers.
  std::vector<std::vector<int>> set_members;

  [[nodiscard]] std::size_t num_cycles() const { return deficits.size(); }
  [[nodiscard]] std::size_t num_sets() const { return set_members.size(); }

  /// covering[c] — the sets that contain cycle c (computed, sorted).
  [[nodiscard]] std::vector<std::vector<int>> covering_sets() const;

  /// True when `weights` (one per set) covers every cycle's deficit.
  [[nodiscard]] bool is_feasible(const std::vector<std::int64_t>& weights) const;
};

/// A weight assignment and its total.
struct TdSolution {
  std::vector<std::int64_t> weights;
  std::int64_t total = 0;
};

/// Which reductions to run (all on by default; the ablation bench toggles).
struct SimplifyOptions {
  /// Paper simplification 2: drop sets contained in other sets.
  bool drop_dominated_sets = true;
  /// Paper simplification 3: auto-assign deficits of singleton-covered cycles.
  bool auto_assign_singletons = true;
  /// Extra reduction: drop a cycle whose member sets are a superset of
  /// another cycle's with no larger deficit (it is then implied).
  bool drop_dominated_cycles = true;
  /// The pairwise cycle-domination pass is quadratic in the number of live
  /// cycles; skip it above this count (0 = never skip).
  std::size_t max_cycles_for_pairwise = 20'000;
};

/// Result of simplifying an instance.
struct SimplifiedTd {
  /// The reduced instance (indices remapped).
  TdInstance reduced;
  /// reduced set index -> original set index.
  std::vector<int> kept_sets;
  /// Tokens committed per ORIGINAL set by singleton auto-assignment.
  std::vector<std::int64_t> base_weights;
  /// Sum of base_weights.
  std::int64_t base_total = 0;

  /// Combines a solution of `reduced` with the committed base weights into a
  /// solution of the original instance.
  [[nodiscard]] TdSolution lift(const TdSolution& reduced_solution) const;
};

/// Runs the reductions to fixpoint. Throws std::invalid_argument when some
/// positive-deficit cycle is covered by no set (the instance is infeasible —
/// cannot happen for instances derived from a LIS, see Sec. V).
SimplifiedTd simplify(const TdInstance& instance, const SimplifyOptions& options = {});

}  // namespace lid::core
