#include "core/floorplan.hpp"

#include <cstdlib>
#include <numeric>

#include "graph/scc.hpp"
#include "util/check.hpp"

namespace lid::core {

int Placement::wire_length(const lis::LisGraph& lis, lis::ChannelId ch) const {
  const lis::Channel& channel = lis.channel(ch);
  LID_ENSURE(position.size() == lis.num_cores(), "Placement does not match the netlist");
  const Point& a = position[static_cast<std::size_t>(channel.src)];
  const Point& b = position[static_cast<std::size_t>(channel.dst)];
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Placement random_placement(const lis::LisGraph& lis, int side, util::Rng& rng) {
  LID_ENSURE(side >= 1, "random_placement: grid side must be positive");
  LID_ENSURE(static_cast<std::size_t>(side) * static_cast<std::size_t>(side) >= lis.num_cores(),
             "random_placement: grid too small for the netlist");
  std::vector<int> cells(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  std::iota(cells.begin(), cells.end(), 0);
  rng.shuffle(cells);
  Placement placement;
  placement.position.reserve(lis.num_cores());
  for (std::size_t v = 0; v < lis.num_cores(); ++v) {
    placement.position.push_back({cells[v] % side, cells[v] / side});
  }
  return placement;
}

Placement clustered_placement(const lis::LisGraph& lis, int side, util::Rng& rng) {
  LID_ENSURE(side >= 1, "clustered_placement: grid side must be positive");
  LID_ENSURE(static_cast<std::size_t>(side) * static_cast<std::size_t>(side) >= lis.num_cores(),
             "clustered_placement: grid too small for the netlist");
  const graph::SccPartition part = graph::scc(lis.structure());
  Placement placement;
  placement.position.resize(lis.num_cores());
  int cell = 0;
  for (int c = 0; c < part.count; ++c) {
    std::vector<lis::CoreId> members = part.members[static_cast<std::size_t>(c)];
    rng.shuffle(members);
    for (const lis::CoreId v : members) {
      const int row = cell / side;
      const int col = cell % side;
      // Snake scan keeps consecutive cells adjacent across row boundaries.
      placement.position[static_cast<std::size_t>(v)] = {
          (row % 2 == 0) ? col : side - 1 - col, row};
      ++cell;
    }
  }
  return placement;
}

int required_relay_stations(int wire_length, int reach) {
  LID_ENSURE(reach >= 1, "required_relay_stations: reach must be positive");
  LID_ENSURE(wire_length >= 0, "required_relay_stations: negative wire length");
  if (wire_length <= reach) return 0;
  return (wire_length + reach - 1) / reach - 1;
}

lis::LisGraph apply_floorplan(const lis::LisGraph& lis, const Placement& placement, int reach) {
  lis::LisGraph pipelined = lis;
  for (lis::ChannelId ch = 0; ch < static_cast<lis::ChannelId>(lis.num_channels()); ++ch) {
    pipelined.set_relay_stations(
        ch, required_relay_stations(placement.wire_length(lis, ch), reach));
  }
  return pipelined;
}

}  // namespace lid::core
