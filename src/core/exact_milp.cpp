#include "core/exact_milp.hpp"

#include <numeric>

#include "milp/ilp.hpp"
#include "util/check.hpp"

namespace lid::core {

ExactResult solve_exact_milp(const TdInstance& instance, const TdSolution& upper_bound,
                             const ExactOptions& options) {
  LID_ENSURE(instance.is_feasible(upper_bound.weights),
             "solve_exact_milp: upper bound infeasible");
  ExactResult result;
  util::Timer timer;

  const std::size_t n_sets = instance.num_sets();
  if (instance.num_cycles() == 0) {
    result.solution = TdSolution{std::vector<std::int64_t>(n_sets, 0), 0};
    result.elapsed_ms = timer.elapsed_ms();
    return result;
  }

  milp::LinearProgram lp;
  lp.objective.assign(n_sets, util::Rational(1));
  const auto covering = instance.covering_sets();
  for (std::size_t c = 0; c < instance.num_cycles(); ++c) {
    std::vector<util::Rational> coeffs(n_sets, util::Rational(0));
    for (const int s : covering[c]) coeffs[static_cast<std::size_t>(s)] = util::Rational(1);
    lp.add_constraint(std::move(coeffs), milp::Relation::kGreaterEq,
                      util::Rational(instance.deficits[c]));
  }

  milp::IlpOptions ilp_options;
  ilp_options.timeout_ms = options.timeout_ms;
  ilp_options.max_nodes = options.max_nodes;
  const milp::IlpResult ilp = milp::solve_ilp(lp, ilp_options);
  result.nodes_explored = ilp.nodes;
  result.elapsed_ms = timer.elapsed_ms();

  switch (ilp.status) {
    case milp::IlpResult::Status::kOptimal: {
      TdSolution solution;
      solution.weights = ilp.solution;
      solution.total =
          std::accumulate(ilp.solution.begin(), ilp.solution.end(), std::int64_t{0});
      LID_ASSERT(instance.is_feasible(solution.weights), "MILP solution infeasible");
      LID_ASSERT(solution.total <= upper_bound.total, "MILP worse than the upper bound");
      result.solution = std::move(solution);
      return result;
    }
    case milp::IlpResult::Status::kCutOff:
      result.cut_off = true;
      return result;
    case milp::IlpResult::Status::kInfeasible:
    case milp::IlpResult::Status::kUnbounded:
      // A TD covering program is always feasible (take the upper bound) and
      // bounded below by zero: reaching here is a solver bug.
      throw std::logic_error("solve_exact_milp: covering program reported infeasible/unbounded");
  }
  return result;
}

}  // namespace lid::core
