#include "core/qs_problem.hpp"

#include <algorithm>
#include <map>

#include "graph/cycles.hpp"
#include "graph/scc.hpp"
#include "mg/mcm.hpp"

namespace lid::core {
namespace {

using lis::ChannelId;
using lis::LisGraph;
using util::Rational;

/// The SCC-collapsed LIS plus the map back to original channels, written
/// into a QsBuildTarget.
void collapse_sccs(const LisGraph& lis, QsBuildTarget& out) {
  const graph::SccPartition part = graph::scc(lis.structure());
  for (int c = 0; c < part.count; ++c) {
    out.collapsed.add_core("scc" + std::to_string(c));
  }
  for (ChannelId ch = 0; ch < static_cast<ChannelId>(lis.num_channels()); ++ch) {
    const lis::Channel& channel = lis.channel(ch);
    const int cs = part.comp_of[static_cast<std::size_t>(channel.src)];
    const int cd = part.comp_of[static_cast<std::size_t>(channel.dst)];
    if (cs == cd) continue;
    out.collapsed.add_channel(static_cast<lis::CoreId>(cs), static_cast<lis::CoreId>(cd),
                              channel.relay_stations, channel.queue_capacity);
    out.channel_origin.push_back(ch);
  }
}

/// True when every core has unit latency. The collapse rebuilds SCCs as
/// single plain cores, so pipelined cores (whose internal stages create
/// additional zero-token places and cycles) must disable it.
bool all_cores_unit_latency(const LisGraph& lis) {
  for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
    if (lis.core_latency(v) != 1) return false;
  }
  return true;
}

/// True when all intra-SCC channels have unit queues (required for the
/// collapse to preserve deficits exactly; see header).
bool intra_scc_queues_are_unit(const LisGraph& lis) {
  const graph::SccPartition part = graph::scc(lis.structure());
  for (ChannelId ch = 0; ch < static_cast<ChannelId>(lis.num_channels()); ++ch) {
    const lis::Channel& channel = lis.channel(ch);
    const int cs = part.comp_of[static_cast<std::size_t>(channel.src)];
    const int cd = part.comp_of[static_cast<std::size_t>(channel.dst)];
    if (cs == cd && channel.queue_capacity != 1) return false;
  }
  return true;
}

}  // namespace

std::int64_t cycle_deficit(std::int64_t tokens, std::int64_t places, const Rational& theta) {
  // ceil(theta.num * places / theta.den) - tokens, clamped at 0.
  const std::int64_t needed = (theta.num() * places + theta.den() - 1) / theta.den();
  return std::max<std::int64_t>(0, needed - tokens);
}

QsBuildTarget select_build_target(const LisGraph& lis, const QsBuildOptions& options) {
  QsBuildTarget target;
  // Simplification 4: collapse SCCs when relay stations sit only between
  // them (and intra-SCC queues are unit, so deficits are preserved exactly).
  if (options.allow_scc_collapse && all_cores_unit_latency(lis) &&
      relay_stations_only_between_sccs(lis) && intra_scc_queues_are_unit(lis)) {
    collapse_sccs(lis, target);
    if (target.collapsed.num_cores() < lis.num_cores()) {
      target.collapsed_used = true;
    } else {
      target.collapsed = LisGraph();
      target.channel_origin.clear();
    }
  }
  return target;
}

bool relay_stations_only_between_sccs(const LisGraph& lis) {
  const graph::SccPartition part = graph::scc(lis.structure());
  for (ChannelId ch = 0; ch < static_cast<ChannelId>(lis.num_channels()); ++ch) {
    const lis::Channel& channel = lis.channel(ch);
    if (channel.relay_stations == 0) continue;
    const int cs = part.comp_of[static_cast<std::size_t>(channel.src)];
    const int cd = part.comp_of[static_cast<std::size_t>(channel.dst)];
    if (cs == cd) return false;
  }
  return true;
}

QsProblem build_qs_problem(const LisGraph& lis, const QsBuildOptions& options) {
  return build_qs_problem_with_mst(lis, lis::ideal_mst(lis), lis::practical_mst(lis), options);
}

QsProblem build_qs_problem_with_mst(const LisGraph& lis, const Rational& theta_ideal,
                                    const Rational& theta_practical,
                                    const QsBuildOptions& options) {
  QsProblem problem;
  problem.theta_ideal = theta_ideal;
  problem.theta_practical = theta_practical;
  problem.theta_target = (options.target_mst > Rational(0))
                             ? Rational::min(options.target_mst, problem.theta_ideal)
                             : problem.theta_ideal;
  if (!problem.has_degradation()) return problem;

  const QsBuildTarget build_target = select_build_target(lis, options);
  problem.scc_collapsed = build_target.collapsed_used;
  const LisGraph& target = build_target.graph(lis);

  const lis::Expansion expansion = lis::expand_doubled(target);
  const mg::MarkedGraph& dg = expansion.graph;

  // Queue place -> channel (in `target` numbering).
  std::map<mg::PlaceId, ChannelId> queue_place_of;
  for (ChannelId ch = 0; ch < static_cast<ChannelId>(target.num_channels()); ++ch) {
    queue_place_of.emplace(expansion.queue_place(ch), ch);
  }

  // Candidate channel -> TD set index, assigned on first sighting.
  std::map<ChannelId, int> set_of_channel;
  std::vector<ChannelId> target_channels;

  struct RawCycle {
    std::int64_t deficit;
    std::vector<ChannelId> queue_channels;
  };
  std::vector<RawCycle> raw;

  const Rational theta = problem.theta_target;
  const auto on_cycle = [&](const graph::Cycle& cycle) {
    problem.cycles_enumerated += 1;
    // Simplification 1: a degrading cycle needs a backedge and a relay-
    // station output place (the only zero-token forward places).
    bool has_back = false;
    bool has_zero_forward = false;
    std::int64_t tokens = 0;
    for (const graph::EdgeId p : cycle) {
      const std::int64_t tok = dg.tokens(p);
      tokens += tok;
      if (dg.place_kind(p) == mg::PlaceKind::kBackward) {
        has_back = true;
      } else if (tok == 0) {
        has_zero_forward = true;
      }
    }
    if (has_back && has_zero_forward) {
      const auto places = static_cast<std::int64_t>(cycle.size());
      const std::int64_t deficit = cycle_deficit(tokens, places, theta);
      if (deficit > 0) {
        RawCycle rc;
        rc.deficit = deficit;
        for (const graph::EdgeId p : cycle) {
          const auto it = queue_place_of.find(p);
          if (it != queue_place_of.end()) rc.queue_channels.push_back(it->second);
        }
        LID_ASSERT(!rc.queue_channels.empty(),
                   "degrading cycle without a sizable queue backedge");
        raw.push_back(std::move(rc));
      }
    }
    return options.max_cycles == 0 || problem.cycles_enumerated < options.max_cycles;
  };
  const bool complete = graph::for_each_cycle(dg.structure(), on_cycle, nullptr, options.cancel);
  if (!complete) {
    problem.truncated = true;
    // The only other way enumeration stops early is on_cycle declining at
    // the cycle cap; anything else was the cancel token.
    const bool cap_hit =
        options.max_cycles != 0 && problem.cycles_enumerated >= options.max_cycles;
    problem.cancelled = !cap_hit;
  }
  problem.problem_cycles = raw.size();

  // Build the TD instance: one set per candidate channel, one element per
  // problematic cycle.
  for (const RawCycle& rc : raw) {
    for (const ChannelId ch : rc.queue_channels) {
      if (set_of_channel.emplace(ch, static_cast<int>(target_channels.size())).second) {
        target_channels.push_back(ch);
      }
    }
  }
  problem.td.set_members.resize(target_channels.size());
  for (int c = 0; c < static_cast<int>(raw.size()); ++c) {
    problem.td.deficits.push_back(raw[static_cast<std::size_t>(c)].deficit);
    for (const ChannelId ch : raw[static_cast<std::size_t>(c)].queue_channels) {
      problem.td.set_members[static_cast<std::size_t>(set_of_channel.at(ch))].push_back(c);
    }
  }
  for (auto& members : problem.td.set_members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }

  // Map candidate channels back to the original netlist numbering.
  problem.channels.reserve(target_channels.size());
  for (const ChannelId ch : target_channels) {
    problem.channels.push_back(build_target.origin(ch));
  }
  return problem;
}

LisGraph apply_solution(const LisGraph& lis, const QsProblem& problem,
                        const std::vector<std::int64_t>& weights) {
  LID_ENSURE(weights.size() == problem.channels.size(),
             "apply_solution: one weight per candidate channel required");
  LisGraph sized = lis;
  for (std::size_t s = 0; s < weights.size(); ++s) {
    LID_ENSURE(weights[s] >= 0, "apply_solution: negative weight");
    const ChannelId ch = problem.channels[s];
    sized.set_queue_capacity(ch, lis.channel(ch).queue_capacity + static_cast<int>(weights[s]));
  }
  return sized;
}

}  // namespace lid::core
