// Lazy critical-cycle constraint generation — queue sizing without up-front
// cycle enumeration.
//
// The eager pipeline (qs_problem.hpp) enumerates every elementary cycle of
// the doubled graph before the first sizing decision, even though the
// achieved MST is determined by a handful of *critical* cycles. This driver
// exploits that: starting from an empty TdInstance, it solves MCM with
// Howard's policy iteration on the (possibly SCC-collapsed) doubled graph,
// and while the achieved MST falls short of the target it adds exactly one
// constraint — the token deficit of the critical cycle Howard already
// produced — re-solves the tiny covering instance (warm-started heuristic
// upper bound + exact branch-and-bound with a monotone lower bound), applies
// the weights to the marking, and repeats. Each added constraint is violated
// by the current weights, so no cycle repeats and the loop converges; at
// convergence the sub-instance optimum equals the full-enumeration optimum
// (the solution is feasible for every cycle — Howard certifies the target —
// and the full optimum is bounded below by any sub-instance optimum).
//
// The separation oracle is warm-started: marking perturbations between
// rounds reuse the previous Howard policy via mg::Workspace, so a re-solve
// costs a few policy improvements instead of a cold start.
//
// When progress stalls (duplicate cycle, sub-solve cut off by budget, or a
// degrading cycle without a sizable queue) the driver falls back to the
// bounded full pipeline (QsMethod::kBoth) and reports it in LazyStats.
#pragma once

#include "core/queue_sizing.hpp"
#include "mg/mcm.hpp"

namespace lid::core {

/// Runs the lazy solver on `lis`. `options.method` is ignored (this *is*
/// the kLazy implementation); `options.exact` budgets each sub-solve and the
/// fallback, `options.build` supplies target/cancel/collapse knobs, and
/// `options.simplify` applies only to the fallback pipeline. `workspace`
/// optionally shares a Howard workspace across calls (engine pooling); null
/// uses a solve-local one.
QsReport size_queues_lazy(const lis::LisGraph& lis, const QsOptions& options = {},
                          mg::Workspace* workspace = nullptr);

/// Like size_queues_lazy, but reuses already-computed θ(G) and θ(d[G]) (e.g.
/// from an engine::AnalysisCache). The thetas must be those of `lis` itself.
QsReport size_queues_lazy_with_mst(const lis::LisGraph& lis, const util::Rational& theta_ideal,
                                   const util::Rational& theta_practical,
                                   const QsOptions& options = {},
                                   mg::Workspace* workspace = nullptr);

}  // namespace lid::core
