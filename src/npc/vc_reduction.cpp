#include "npc/vc_reduction.hpp"

#include <algorithm>
#include <functional>

#include "util/check.hpp"

namespace lid::npc {

VcInstance random_vc(int vertices, double edge_prob, util::Rng& rng) {
  LID_ENSURE(vertices >= 1, "random_vc: need at least one vertex");
  LID_ENSURE(edge_prob >= 0.0 && edge_prob <= 1.0, "random_vc: probability out of range");
  VcInstance instance;
  instance.vertices = vertices;
  for (int u = 0; u < vertices; ++u) {
    for (int v = u + 1; v < vertices; ++v) {
      if (rng.flip(edge_prob)) instance.edges.emplace_back(u, v);
    }
  }
  return instance;
}

int min_vertex_cover(const VcInstance& instance) {
  LID_ENSURE(instance.vertices >= 0, "min_vertex_cover: negative vertex count");
  for (const auto& [u, v] : instance.edges) {
    LID_ENSURE(u >= 0 && v < instance.vertices && u < v, "min_vertex_cover: bad edge");
  }
  // Branch and bound on the classic "pick an uncovered edge; one endpoint
  // must join the cover" dichotomy.
  int best = instance.vertices;  // taking everything always covers
  std::vector<char> in_cover(static_cast<std::size_t>(instance.vertices), 0);
  const std::function<void(int)> recurse = [&](int used) {
    if (used >= best) return;
    const auto uncovered =
        std::find_if(instance.edges.begin(), instance.edges.end(), [&](const auto& e) {
          return !in_cover[static_cast<std::size_t>(e.first)] &&
                 !in_cover[static_cast<std::size_t>(e.second)];
        });
    if (uncovered == instance.edges.end()) {
      best = used;
      return;
    }
    for (const int pick : {uncovered->first, uncovered->second}) {
      in_cover[static_cast<std::size_t>(pick)] = 1;
      recurse(used + 1);
      in_cover[static_cast<std::size_t>(pick)] = 0;
    }
  };
  recurse(0);
  return best;
}

int min_dominating_set(const VcInstance& instance) {
  LID_ENSURE(instance.vertices >= 1, "min_dominating_set: empty graph");
  const auto n = static_cast<std::size_t>(instance.vertices);
  // Closed neighbourhood bitmasks (n <= 20 is plenty for validation).
  LID_ENSURE(instance.vertices <= 20, "min_dominating_set: instance too large");
  std::vector<unsigned> closed(n, 0);
  for (std::size_t v = 0; v < n; ++v) closed[v] = 1u << v;
  for (const auto& [u, v] : instance.edges) {
    closed[static_cast<std::size_t>(u)] |= 1u << v;
    closed[static_cast<std::size_t>(v)] |= 1u << u;
  }
  const unsigned all = (instance.vertices == 32) ? ~0u : (1u << instance.vertices) - 1u;
  int best = instance.vertices;
  // Branch and bound on the lowest undominated vertex: one of its closed
  // neighbourhood must join the set.
  const std::function<void(unsigned, int)> recurse = [&](unsigned dominated, int used) {
    if (used >= best) return;
    if (dominated == all) {
      best = used;
      return;
    }
    std::size_t v = 0;
    while (dominated >> v & 1u) ++v;
    for (std::size_t candidate = 0; candidate < n; ++candidate) {
      if ((closed[candidate] >> v & 1u) == 0) continue;  // must dominate v
      recurse(dominated | closed[candidate], used + 1);
    }
  };
  recurse(0, 0);
  return best;
}

core::TdInstance reduce_dominating_set_to_td(const VcInstance& instance) {
  LID_ENSURE(instance.vertices >= 1, "reduce_dominating_set_to_td: empty graph");
  core::TdInstance td;
  // One cycle per vertex (deficit 1: "dominate me"), one set per vertex
  // containing its closed neighbourhood's cycles (placing weight on set v =
  // putting v into the dominating set).
  td.deficits.assign(static_cast<std::size_t>(instance.vertices), 1);
  td.set_members.resize(static_cast<std::size_t>(instance.vertices));
  for (int v = 0; v < instance.vertices; ++v) {
    td.set_members[static_cast<std::size_t>(v)].push_back(v);
  }
  for (const auto& [u, v] : instance.edges) {
    td.set_members[static_cast<std::size_t>(u)].push_back(v);
    td.set_members[static_cast<std::size_t>(v)].push_back(u);
  }
  for (auto& members : td.set_members) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }
  return td;
}

QsReduction reduce_vc_to_qs(const VcInstance& instance) {
  LID_ENSURE(instance.vertices >= 1, "reduce_vc_to_qs: empty VC instance");
  QsReduction out;

  // Vertex constructs: a_v -> b_v.
  std::vector<lis::CoreId> a(static_cast<std::size_t>(instance.vertices));
  std::vector<lis::CoreId> b(static_cast<std::size_t>(instance.vertices));
  for (int v = 0; v < instance.vertices; ++v) {
    a[static_cast<std::size_t>(v)] = out.lis.add_core("a" + std::to_string(v));
    b[static_cast<std::size_t>(v)] = out.lis.add_core("b" + std::to_string(v));
    out.vertex_construct.push_back(
        out.lis.add_channel(a[static_cast<std::size_t>(v)], b[static_cast<std::size_t>(v)]));
  }

  // Edge constructs: two crossed channels with one relay station each. Every
  // transition stays a pure source (a_*) or pure sink (b_*) of forward edges.
  for (const auto& [u, v] : instance.edges) {
    const lis::ChannelId uv = out.lis.add_channel(a[static_cast<std::size_t>(u)],
                                                  b[static_cast<std::size_t>(v)], 1);
    const lis::ChannelId vu = out.lis.add_channel(a[static_cast<std::size_t>(v)],
                                                  b[static_cast<std::size_t>(u)], 1);
    out.cross_channels.emplace_back(uv, vu);
  }

  // Limiter ring (Fig. 10): five shells in a directed cycle with one relay
  // station — six places, five tokens — pins the ideal MST to 5/6.
  std::vector<lis::CoreId> ring;
  for (int i = 0; i < 5; ++i) ring.push_back(out.lis.add_core("limit" + std::to_string(i)));
  for (int i = 0; i < 5; ++i) {
    out.lis.add_channel(ring[static_cast<std::size_t>(i)],
                        ring[static_cast<std::size_t>((i + 1) % 5)], i == 0 ? 1 : 0);
  }
  return out;
}

}  // namespace lid::npc
