// The Vertex-Cover → Queue-Sizing reduction of Sec. V, plus a brute-force
// vertex-cover solver used to validate the reduction computationally.
//
// For a VC instance G_VC = (V, E) the reduction builds a LIS whose doubled
// graph needs exactly K extra queue tokens (K = minimum vertex cover of
// G_VC) to recover the ideal MST of 5/6:
//   * per VC vertex v: a "vertex construct" — channel a_v -> b_v (q = 1);
//     the extra tokens of a QS solution land on its queue backedge;
//   * per VC edge (u, v): two cross channels a_u -> b_v and a_v -> b_u, each
//     pipelined by one relay station; doubling yields the Fig. 12 cycle with
//     mean 4/6, fixable only by a token on u's or v's construct backedge;
//   * a separate 6-place / 5-token limiter ring (Fig. 10) pinning θ(G) = 5/6.
#pragma once

#include <utility>
#include <vector>

#include "core/token_deficit.hpp"
#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace lid::npc {

/// An undirected simple graph for vertex cover.
struct VcInstance {
  int vertices = 0;
  /// Undirected edges (u, v) with u < v, no duplicates.
  std::vector<std::pair<int, int>> edges;
};

/// Uniformly random VC instance: each possible edge present with prob. p.
VcInstance random_vc(int vertices, double edge_prob, util::Rng& rng);

/// Exact minimum vertex cover size by branch and bound (small instances).
int min_vertex_cover(const VcInstance& instance);

/// The LIS produced by the reduction plus bookkeeping maps.
struct QsReduction {
  lis::LisGraph lis;
  /// Per VC vertex: its construct channel (whose queue the QS solution grows).
  std::vector<lis::ChannelId> vertex_construct;
  /// Per VC edge: the two cross channels.
  std::vector<std::pair<lis::ChannelId, lis::ChannelId>> cross_channels;
};

/// Builds the QS instance for a VC instance (Sec. V construction).
QsReduction reduce_vc_to_qs(const VcInstance& instance);

/// Exact minimum dominating set size by branch and bound (small instances).
/// A dominating set D covers every vertex: v ∈ D or some neighbour of v ∈ D.
int min_dominating_set(const VcInstance& instance);

/// The Sec. VII-A reduction showing the Token-Deficit problem itself is
/// NP-complete: from a dominating-set instance build a TD instance whose
/// sets are the closed neighbourhoods and whose cycles are the vertices
/// (deficit 1 each) — the minimum total weight equals the minimum dominating
/// set. (The paper cites its tech report [20] for this; the construction is
/// the natural one and the tests validate it computationally.)
core::TdInstance reduce_dominating_set_to_td(const VcInstance& instance);

}  // namespace lid::npc
