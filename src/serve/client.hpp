// A minimal blocking client for the lid_serve wire protocol, shared by the
// `lid_tool client` verb, the load generator, the serve tests and the
// selfcheck invariant. One connection, line-framed: send a request line,
// read response lines.
//
// DEPRECATED surface: Client predates protocol v2 and survives as a thin
// v1-compatible wrapper over serve::Session (session.hpp). It still behaves
// byte-identically to the pre-v2 client — the default connect sends no
// `hello`, speaks NDJSON only, and the server keeps v1 envelopes. New code
// should use Session directly: it adds version negotiation, the binary frame
// lane, and the registered-model API (register once, query by ModelHandle)
// instead of shipping netlist text with every request. The overloads taking
// SessionOptions exist for callers migrating incrementally: they negotiate
// v2 on the same old call()-shaped surface.
#pragma once

#include <memory>
#include <string>

#include "lid_api.hpp"
#include "serve/session.hpp"

namespace lid::serve {

class Client {
 public:
  /// Legacy v1 connection: NDJSON, no handshake — wire bytes identical to
  /// pre-v2 builds.
  static Result<Client> connect_unix(const std::string& path);
  static Result<Client> connect_tcp(const std::string& host, int port);

  /// v2-capable connection with explicit options (handshake, transport).
  static Result<Client> connect_unix(const std::string& path, const SessionOptions& options);
  static Result<Client> connect_tcp(const std::string& host, int port,
                                    const SessionOptions& options);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Writes `line` (a newline is appended if missing on the NDJSON lane; a
  /// frame header replaces it on the binary lane). Loops over short writes
  /// and suppresses SIGPIPE (MSG_NOSIGNAL), so a peer vanishing mid-send
  /// surfaces as a kIo error, never a signal.
  Status send_line(const std::string& line);

  /// Blocks until one full response message arrives (without its framing).
  /// kIo on EOF/disconnect. `timeout_ms` > 0 bounds the whole wait; on
  /// expiry returns kTimeout and leaves any partial input buffered (the
  /// connection is then mid-frame — callers should reconnect, as the
  /// retrying client does).
  Result<std::string> recv_line(double timeout_ms = 0.0);

  /// send_line + recv_line. Correct only while requests are issued one at a
  /// time on this connection (responses may interleave otherwise — match by
  /// id in that case).
  Result<std::string> call(const std::string& line);

  void close();

  /// The underlying Session (never null while the client is open): the
  /// migration path to the v2 API without reconnecting.
  [[nodiscard]] Session* session() { return session_.get(); }

 private:
  explicit Client(Session session);

  std::unique_ptr<Session> session_;
};

}  // namespace lid::serve
