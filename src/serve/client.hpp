// A minimal blocking client for the lid_serve wire protocol, shared by the
// `lid_tool client` verb, the load generator, the serve tests and the
// selfcheck invariant. One connection, line-framed: send a request line,
// read response lines.
#pragma once

#include <memory>
#include <string>

#include "lid_api.hpp"

namespace lid::serve {

class Client {
 public:
  static Result<Client> connect_unix(const std::string& path);
  static Result<Client> connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Writes `line` (a newline is appended if missing). Loops over short
  /// writes and suppresses SIGPIPE (MSG_NOSIGNAL), so a peer vanishing
  /// mid-send surfaces as a kIo error, never a signal.
  Status send_line(const std::string& line);

  /// Blocks until one full response line arrives (without the newline).
  /// kIo on EOF/disconnect. `timeout_ms` > 0 bounds the whole wait; on
  /// expiry returns kTimeout and leaves any partial line buffered (the
  /// connection is then mid-frame — callers should reconnect, as the
  /// retrying client does).
  Result<std::string> recv_line(double timeout_ms = 0.0);

  /// send_line + recv_line. Correct only while requests are issued one at a
  /// time on this connection (responses may interleave otherwise — match by
  /// id in that case).
  Result<std::string> call(const std::string& line);

  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace lid::serve
