#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

#include "util/json.hpp"

namespace lid::serve {
namespace {

/// Explicit memory model for one resident model, beyond its memo: the
/// canonical text (exact) plus a modeled Instance footprint. The constants
/// are deliberately part of the wire contract (register-model reports the
/// result), so they are documented in docs/api-overview.md.
std::size_t base_footprint(const std::string& canonical_text, const Instance& instance) {
  return canonical_text.size() + 256 + 64 * instance.num_cores() + 96 * instance.num_channels();
}

/// Accounted size of one memo entry.
std::size_t memo_footprint(const std::string& key, const std::string& payload) {
  return key.size() + payload.size() + 32;
}

}  // namespace

Registry::Registry(RegistryOptions options) : options_(options) {}

std::string Registry::fingerprint(const std::string& canonical_text) {
  // FNV-1a 64: tiny, dependency-free, and stable across platforms. This is a
  // content address for cache lookup, not a security boundary.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : canonical_text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  static const char* digits = "0123456789abcdef";
  std::string out = "lis-";
  for (int shift = 60; shift >= 0; shift -= 4) out.push_back(digits[(h >> shift) & 0xF]);
  return out;
}

Result<ModelInfo> Registry::register_model(const std::string& text) {
  // Parse the submitted text, canonicalize, then re-parse the canonical form
  // so provenance (lint line numbers) corresponds to the text the
  // fingerprint addresses — this is what makes registered-model payloads
  // behave exactly as if the canonical text had been sent inline.
  const Result<Instance> submitted = parse_netlist(text);
  if (!submitted) return submitted.error();
  const Result<std::string> canonical = netlist_text(*submitted);
  if (!canonical) return canonical.error();
  Result<Instance> instance = parse_netlist(*canonical);
  if (!instance) return instance.error();

  const std::string fp = fingerprint(*canonical);
  const std::size_t base = base_footprint(*canonical, *instance);

  const std::lock_guard<std::mutex> lock(mutex_);
  registered_ += 1;
  if (const auto it = models_.find(fp); it != models_.end()) {
    // Content-addressed: same canonical text, same model. Refresh LRU.
    last_used_[fp] = ++tick_;
    const Entry& entry = *it->second;
    return ModelInfo{fp, entry.base_bytes, entry.instance.num_cores(),
                     entry.instance.num_channels(), entry.instance.total_relay_stations()};
  }
  if (options_.max_models == 0 || base > options_.max_bytes) {
    return Error{ErrorCode::kInvalidArgument,
                 "model of " + std::to_string(base) + " accounted bytes does not fit the registry (" +
                     std::to_string(options_.max_bytes) + " bytes, " +
                     std::to_string(options_.max_models) + " models)"};
  }

  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fp;
  entry->canonical_text = *canonical;
  entry->instance = *std::move(instance);
  entry->base_bytes = base;
  entry->cache = std::make_unique<engine::AnalysisCache>(entry->instance.graph());

  models_.emplace(fp, entry);
  last_used_[fp] = ++tick_;
  bytes_ += base;
  evict_to_fit_locked(entry.get());
  return ModelInfo{fp, base, entry->instance.num_cores(), entry->instance.num_channels(),
                   entry->instance.total_relay_stations()};
}

std::shared_ptr<Registry::Entry> Registry::acquire(const std::string& fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(fingerprint);
  if (it == models_.end()) {
    misses_ += 1;
    return nullptr;
  }
  hits_ += 1;
  it->second->hits.fetch_add(1);
  last_used_[fingerprint] = ++tick_;
  return it->second;
}

bool Registry::evict(const std::string& fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(fingerprint);
  if (it == models_.end()) return false;
  bytes_ -= std::min(bytes_, it->second->base_bytes +
                                 static_cast<std::size_t>(it->second->memo_bytes.load()));
  models_.erase(it);
  last_used_.erase(fingerprint);
  evictions_ += 1;
  return true;
}

std::vector<ModelInfo> Registry::list() const {
  std::vector<ModelInfo> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(models_.size());
    for (const auto& [fp, entry] : models_) {
      out.push_back(ModelInfo{fp, entry->base_bytes, entry->instance.num_cores(),
                              entry->instance.num_channels(),
                              entry->instance.total_relay_stations()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ModelInfo& a, const ModelInfo& b) { return a.fingerprint < b.fingerprint; });
  return out;
}

void Registry::memoize(Entry& entry, const std::string& key, const std::string& payload) {
  if (!entry.memo.emplace(key, payload).second) return;
  const std::size_t added = memo_footprint(key, payload);
  entry.memo_bytes.fetch_add(static_cast<std::int64_t>(added));
  const std::lock_guard<std::mutex> lock(mutex_);
  bytes_ += added;
  // The caller holds entry.mutex, so the entry itself must survive this
  // trim; other models are fair game.
  evict_to_fit_locked(&entry);
}

void Registry::note_memo(bool hit) {
  (hit ? memo_hits_ : memo_misses_).fetch_add(1);
}

void Registry::evict_to_fit_locked(const Entry* keep) {
  while (bytes_ > options_.max_bytes || models_.size() > options_.max_models) {
    const Entry* victim = nullptr;
    std::uint64_t oldest = 0;
    for (const auto& [fp, entry] : models_) {
      if (entry.get() == keep) continue;
      const std::uint64_t used = last_used_[fp];
      if (victim == nullptr || used < oldest) {
        victim = entry.get();
        oldest = used;
      }
    }
    if (victim == nullptr) return;  // only `keep` is left; nothing to trim
    const std::string fp = victim->fingerprint;
    bytes_ -= std::min(bytes_, victim->base_bytes +
                                   static_cast<std::size_t>(victim->memo_bytes.load()));
    models_.erase(fp);
    last_used_.erase(fp);
    evictions_ += 1;
  }
}

Registry::Stats Registry::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.resident = models_.size();
  s.bytes = bytes_;
  s.max_bytes = options_.max_bytes;
  s.max_models = options_.max_models;
  s.registered = registered_;
  s.evictions = evictions_;
  s.hits = hits_;
  s.misses = misses_;
  s.memo_hits = memo_hits_.load();
  s.memo_misses = memo_misses_.load();
  return s;
}

std::string Registry::stats_json() const {
  const Stats s = stats();
  util::JsonWriter w;
  w.begin_object();
  w.key("resident").value(s.resident);
  w.key("bytes").value(s.bytes);
  w.key("max_bytes").value(s.max_bytes);
  w.key("max_models").value(s.max_models);
  w.key("registered").value(s.registered);
  w.key("evictions").value(s.evictions);
  w.key("hits").value(s.hits);
  w.key("misses").value(s.misses);
  w.key("memo_hits").value(s.memo_hits);
  w.key("memo_misses").value(s.memo_misses);
  w.end_object();
  return w.str();
}

}  // namespace lid::serve
