#include "serve/histogram.hpp"

#include <algorithm>

#include "util/json.hpp"

namespace lid::serve {

double LatencyHistogram::bucket_edge_ms(std::size_t i) {
  double edge = 0.001;
  for (std::size_t k = 0; k < i; ++k) edge *= 2.0;
  return edge;
}

void LatencyHistogram::record(double ms) {
  std::size_t bucket = 0;
  double edge = 0.001;
  while (bucket + 1 < kBuckets && ms > edge) {
    edge *= 2.0;
    ++bucket;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[bucket];
  ++count_;
  max_ms_ = std::max(max_ms_, ms);
}

std::int64_t LatencyHistogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double LatencyHistogram::quantile_ms(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = seen + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Interpolate inside [lower, upper) by rank position.
      const double lower = i == 0 ? 0.0 : bucket_edge_ms(i - 1);
      const double upper = std::min(bucket_edge_ms(i), max_ms_);
      const double frac =
          buckets_[i] == 0 ? 0.0 : (target - seen) / static_cast<double>(buckets_[i]);
      return lower + frac * std::max(0.0, upper - lower);
    }
    seen = next;
  }
  return max_ms_;
}

std::string LatencyHistogram::to_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("count").value(count());
  w.key("p50_ms").value_fixed(quantile_ms(0.50), 3);
  w.key("p95_ms").value_fixed(quantile_ms(0.95), 3);
  w.key("p99_ms").value_fixed(quantile_ms(0.99), 3);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    w.key("max_ms").value_fixed(max_ms_, 3);
  }
  w.end_object();
  return w.str();
}

}  // namespace lid::serve
