// A resilient wrapper over serve::Client: retries, backoff, circuit breaker.
//
// Transport failures (connect refused, send/recv errors, EOF mid-response,
// per-attempt timeout, an unparseable response line) are retried on a fresh
// connection with exponential backoff and decorrelated jitter. Valid
// application error responses (`ok:false` with a code) are definitive and
// returned as-is — except `overloaded`, which by default is treated as
// transient and retried, since shedding is exactly the server asking the
// client to come back later.
//
// Every verb of the lid_serve protocol is a pure function of its request
// (the server mutates nothing), so retries are always safe here. The
// `assume_idempotent` switch exists for callers embedding this client
// against future non-idempotent verbs: when false, a failure after the
// request line was fully written is returned instead of retried (the server
// may have executed it).
//
// The circuit breaker watches consecutive transport failures. After
// `breaker_threshold` of them it opens: calls fail fast (kUnavailable-style
// kIo) without touching the network for `breaker_cooldown_ms`, then one
// probe attempt is allowed (half-open); success closes the breaker, failure
// re-opens it. This keeps a dead server from stalling a closed-loop caller
// on full backoff ladders per request.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/client.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace lid::serve {

/// Tuning for RetryingClient.
struct RetryPolicy {
  /// Total attempts per call, including the first; < 1 is clamped to 1.
  int max_attempts = 3;
  /// First backoff; subsequent sleeps use decorrelated jitter
  /// (uniform(base, prev * 3), capped at max_backoff_ms).
  double base_backoff_ms = 5.0;
  double max_backoff_ms = 1'000.0;
  /// Per-attempt response timeout; 0 = wait forever.
  double attempt_timeout_ms = 0.0;
  /// Retry `overloaded` application errors (server shed the request).
  bool retry_overloaded = true;
  /// When false, failures after the request was fully sent are not retried.
  bool assume_idempotent = true;
  /// Seed of the jitter stream (reproducible backoff sequences in tests).
  std::uint64_t jitter_seed = 1;
  /// Consecutive transport failures that open the breaker; 0 disables it.
  int breaker_threshold = 5;
  /// How long an open breaker rejects calls before allowing a probe.
  double breaker_cooldown_ms = 1'000.0;
  /// Runs once on every fresh connection before the pending request is
  /// sent — the hook for per-connection/session state that a reconnect
  /// loses. The canonical use is re-registering models after a failover, so
  /// registered-model requests never see `unknown_model` on a replacement
  /// server. A failing warmup counts as a transport failure of that attempt
  /// (the connection is dropped and retried).
  std::function<Status(Client&)> session_warmup;
};

/// Counters accumulated across calls (not thread-safe; one RetryingClient
/// per thread, like Client itself).
struct RetryStats {
  std::int64_t calls = 0;        ///< call() invocations
  std::int64_t attempts = 0;     ///< network attempts actually made
  std::int64_t retries = 0;      ///< attempts beyond each call's first
  std::int64_t reconnects = 0;   ///< fresh connections established
  std::int64_t giveups = 0;      ///< calls that exhausted max_attempts
  std::int64_t breaker_fast_fails = 0;  ///< calls rejected by an open breaker
  std::int64_t backoff_sleeps = 0;
  double backoff_ms_total = 0.0;
  // Transport failures split by phase, so a dead server (nothing listening:
  // connects fail) reads differently from a flaky one (connects succeed,
  // requests die mid-flight).
  std::int64_t connect_failures = 0;     ///< connector/warmup failed; no request sent
  std::int64_t connect_refused = 0;      ///< subset: actively refused (no listener)
  std::int64_t mid_request_failures = 0; ///< send/recv/garbage on a live connection
};

class RetryingClient {
 public:
  /// `connect` mints a fresh connection (e.g. a lambda over connect_unix);
  /// it is invoked lazily on the first call and after any transport failure.
  using Connector = std::function<Result<Client>()>;

  RetryingClient(Connector connect, RetryPolicy policy);

  /// Sends `line`, returns the raw response line. Applies retries, backoff
  /// and the breaker per the policy.
  Result<std::string> call(const std::string& line);

  [[nodiscard]] const RetryStats& stats() const { return stats_; }
  [[nodiscard]] bool breaker_open() const { return breaker_open_; }

  /// Drops the current connection (next call reconnects).
  void disconnect();

 private:
  /// One network attempt. `sent_request` reports whether the request line
  /// was fully written before any failure (idempotency gate); `overloaded`
  /// whether a valid response carried the `overloaded` error code.
  Result<std::string> attempt(const std::string& line, bool& sent_request, bool& overloaded);

  void note_transport_failure();
  void note_success();

  Connector connect_;
  RetryPolicy policy_;
  std::optional<Client> connection_;
  util::Rng rng_;
  RetryStats stats_;

  int consecutive_failures_ = 0;
  bool breaker_open_ = false;
  util::Timer breaker_opened_at_;
  double previous_backoff_ms_ = 0.0;
};

}  // namespace lid::serve
