// Seeded fault injection for lid_serve — the chaos-testing harness.
//
// A FaultPlan describes, per response, the probability of each injected
// failure mode; a FaultInjector draws seeded decisions from it so a chaos
// run is reproducible bit-for-bit. The server consults the injector once per
// response (after executing the request, before writing the response line)
// and perturbs only the *transport*: payload computation is never touched,
// so every fault is exactly the kind a resilient client must survive —
//
//   stall   — the worker sleeps before responding (slow server / GC pause);
//   torn    — only a prefix of the response line is written, then the
//             connection is shut down (partial write / crash mid-response);
//   drop    — the connection is shut down without writing anything
//             (connection reset);
//   garbage — a syntactically invalid line is written instead of the
//             response (corrupted frame).
//
// Plan spec format (comma-separated, all fields optional):
//
//   seed=42,stall=0.1:50,torn=0.05,drop=0.02,garbage=0.01
//
// where `stall=P:MS` stalls with probability P for MS milliseconds and the
// other entries are plain probabilities in [0, 1].
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "lid_api.hpp"
#include "util/rng.hpp"

namespace lid::serve {

/// A parsed fault plan. The default plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 1;
  double stall_p = 0.0;
  double stall_ms = 0.0;
  double torn_p = 0.0;
  double drop_p = 0.0;
  double garbage_p = 0.0;

  /// True when any fault has a positive probability.
  [[nodiscard]] bool any() const {
    return stall_p > 0.0 || torn_p > 0.0 || drop_p > 0.0 || garbage_p > 0.0;
  }

  /// Parses the `seed=N,stall=P:MS,torn=P,drop=P,garbage=P` spec. An empty
  /// spec yields the default (inactive) plan.
  static Result<FaultPlan> parse(const std::string& spec);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
};

/// One per-response decision. At most one of torn/drop/garbage is set (they
/// are mutually exclusive outcomes of a single draw); a stall may accompany
/// any of them.
struct FaultDecision {
  double stall_ms = 0.0;  ///< > 0: sleep this long before responding
  bool torn = false;
  bool drop = false;
  bool garbage = false;

  [[nodiscard]] bool any() const { return stall_ms > 0.0 || torn || drop || garbage; }
};

/// Draws seeded decisions and counts what it injected. Thread-safe: workers
/// share one injector; the draw order (and thus the exact fault sequence)
/// depends on scheduling, but counts concentrate tightly around plan
/// probabilities regardless.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool active() const { return plan_.any(); }

  /// The decision for the next response.
  FaultDecision decide();

  // Counter snapshots.
  [[nodiscard]] std::int64_t stalls() const;
  [[nodiscard]] std::int64_t torn() const;
  [[nodiscard]] std::int64_t drops() const;
  [[nodiscard]] std::int64_t garbage() const;

  /// Compact JSON object with the plan and the counters (for `stats`).
  [[nodiscard]] std::string stats_json() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  util::Rng rng_;
  std::int64_t stalls_ = 0;
  std::int64_t torn_ = 0;
  std::int64_t drops_ = 0;
  std::int64_t garbage_ = 0;
};

}  // namespace lid::serve
