#include "serve/frame.hpp"

#include <cstdint>

#include "serve/protocol.hpp"

namespace lid::serve {

std::string frame_message(std::string_view payload, unsigned char flags) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>(kFrameMagic0));
  frame.push_back(static_cast<char>(kFrameMagic1));
  frame.push_back(static_cast<char>(kFrameVersion));
  frame.push_back(static_cast<char>(flags));
  frame.push_back(static_cast<char>(length & 0xFF));
  frame.push_back(static_cast<char>((length >> 8) & 0xFF));
  frame.push_back(static_cast<char>((length >> 16) & 0xFF));
  frame.push_back(static_cast<char>((length >> 24) & 0xFF));
  frame.append(payload);
  return frame;
}

bool starts_frame(std::string_view buffer) {
  return !buffer.empty() && static_cast<unsigned char>(buffer[0]) == kFrameMagic0;
}

FrameDecode decode_frame(std::string_view buffer, std::size_t max_payload_bytes) {
  FrameDecode out;
  if (buffer.size() < kFrameHeaderBytes) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  const auto byte = [&](std::size_t i) { return static_cast<unsigned char>(buffer[i]); };
  if (byte(0) != kFrameMagic0 || byte(1) != kFrameMagic1) {
    out.status = FrameStatus::kBad;
    out.error_code = codes::kParse;
    out.error = "bad frame magic";
    return out;
  }
  if (byte(2) != kFrameVersion) {
    out.status = FrameStatus::kBad;
    out.error_code = codes::kUnsupportedVersion;
    out.error = "unsupported frame version " + std::to_string(byte(2)) + " (server speaks " +
                std::to_string(kFrameVersion) + ")";
    return out;
  }
  if (byte(3) != 0) {
    out.status = FrameStatus::kBad;
    out.error_code = codes::kParse;
    out.error = "reserved frame flags must be 0, got " + std::to_string(byte(3));
    return out;
  }
  const std::uint32_t length = static_cast<std::uint32_t>(byte(4)) |
                               (static_cast<std::uint32_t>(byte(5)) << 8) |
                               (static_cast<std::uint32_t>(byte(6)) << 16) |
                               (static_cast<std::uint32_t>(byte(7)) << 24);
  if (length > max_payload_bytes) {
    out.status = FrameStatus::kBad;
    out.error_code = codes::kTooLarge;
    out.error = "frame payload of " + std::to_string(length) + " bytes exceeds the limit of " +
                std::to_string(max_payload_bytes);
    return out;
  }
  if (buffer.size() < kFrameHeaderBytes + length) {
    out.status = FrameStatus::kNeedMore;
    return out;
  }
  out.status = FrameStatus::kFrame;
  out.payload.assign(buffer.data() + kFrameHeaderBytes, length);
  out.consumed = kFrameHeaderBytes + length;
  return out;
}

}  // namespace lid::serve
