// The lid_serve daemon core: a socket front end over the engine TaskPool.
//
// Architecture (one process, no external dependencies):
//
//   accept thread ──► one reader thread per connection ──► bounded TaskPool
//                                                      ◄── worker responses
//
// Readers parse newline-delimited JSON requests (protocol.hpp) and submit
// them to the pool. Robustness properties, in the paper's own queueing
// terms (finite queues + backpressure turned on the server itself):
//
//   * bounded admission — the pool queue has a fixed capacity; when it is
//     full the reader answers `overloaded` immediately (explicit load
//     shedding) instead of queueing without bound;
//   * deadlines — a request whose `deadline_ms` elapses while queued is
//     answered `deadline_exceeded` without executing; the execution itself
//     is bounded by deterministic node budgets (ExecLimits), never by wall
//     clock, so responses stay reproducible;
//   * input-size limits — oversized request lines and embedded netlists are
//     rejected with `too_large` before they allocate;
//   * graceful drain — request_stop() (async-signal-safe, wired to
//     SIGINT/SIGTERM by the binary) stops accepting work, completes every
//     queued and in-flight request, flushes responses, then shuts down;
//   * observability — per-request structured log lines, engine Metrics
//     (counters + per-verb stage timers), queue depth / shed counts, and a
//     latency histogram, all exposed by the `stats` verb.
//
// Transports: every connection speaks NDJSON; a message starting with the
// frame magic (frame.hpp) is a length-prefixed binary frame instead, and the
// two may interleave freely — each response uses the transport its request
// arrived in. The `hello` verb (handled reader-side, like `stats`) upgrades
// the connection to protocol v2, after which response envelopes carry
// `"protocol":2`. Connections that never send `hello` get byte-identical v1
// behavior. The server also owns the model registry (registry.hpp) backing
// the v2 `register-model` / `model` request family.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/task_pool.hpp"
#include "lid_api.hpp"
#include "serve/faults.hpp"
#include "serve/histogram.hpp"
#include "serve/protocol.hpp"
#include "util/timer.hpp"

namespace lid::serve {

struct ServerOptions {
  /// Path of a Unix-domain listening socket. Takes precedence over TCP.
  std::string unix_socket;
  /// TCP listening port on `host` (0 = kernel-assigned; see Server::port()).
  /// Used only when `unix_socket` is empty; -1 disables TCP.
  int tcp_port = -1;
  std::string host = "127.0.0.1";

  /// Worker threads executing requests.
  int workers = 1;
  /// Admission-queue capacity; requests beyond it are shed with
  /// `overloaded`. Must be >= 1.
  std::size_t queue_capacity = 64;
  /// Longest accepted request line, in bytes.
  std::size_t max_request_bytes = 1 << 20;
  /// Deadline applied to requests that do not carry their own
  /// `deadline_ms`; <= 0 means none.
  double default_deadline_ms = 0.0;
  /// Server-side execution caps (node budgets, size limits).
  ExecLimits limits;
  /// Structured per-request log lines land here; nullptr = silent.
  std::ostream* log = nullptr;
  /// Seeded fault injection applied at the response boundary (chaos
  /// testing). The default plan injects nothing. Faults perturb only the
  /// transport — payload computation is never touched.
  FaultPlan fault_plan;
  /// Model-registry budget (registry.hpp); registry_max_models = 0 disables
  /// registration (register-model answers `registry_full`).
  std::size_t registry_max_bytes = std::size_t{64} << 20;
  std::size_t registry_max_models = 64;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Stops and drains if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the accept thread + worker pool.
  Status start();

  /// Requests a graceful drain. Async-signal-safe (a single write() to an
  /// internal pipe) — this is what the binary's SIGINT/SIGTERM handlers
  /// call. Returns immediately.
  void request_stop();

  /// Blocks until a stop was requested and the drain finished: no more
  /// accepts, every admitted request executed and its response flushed,
  /// all threads joined, sockets closed.
  void wait();

  /// request_stop() + wait().
  void stop();

  /// The resolved TCP port (useful with tcp_port = 0), or -1 on Unix.
  [[nodiscard]] int port() const { return resolved_port_; }
  /// Human-readable listening endpoint ("unix:/path" or "tcp:host:port").
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }

  /// The `stats` verb payload: queue/shed/latency snapshot as compact JSON.
  [[nodiscard]] std::string stats_json() const;

  /// The server's model registry (always present; budget from options).
  [[nodiscard]] Registry& registry() { return *registry_; }

 private:
  struct Connection;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);
  void handle_message(const std::shared_ptr<Connection>& connection, std::string text,
                      bool binary);
  void handle_hello(const std::shared_ptr<Connection>& connection, const Request& request,
                    bool binary);
  void respond(const std::shared_ptr<Connection>& connection, const std::string& line,
               bool binary);
  void log_request(const Connection& connection, const Request& request,
                   const std::string& status, double wait_ms, double exec_ms);

  ServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::string endpoint_;
  int resolved_port_ = -1;
  bool unlink_on_close_ = false;

  std::unique_ptr<engine::TaskPool> pool_;
  std::unique_ptr<Registry> registry_;
  engine::Metrics metrics_;
  LatencyHistogram latency_;
  FaultInjector faults_;

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> next_connection_id_{0};
  std::atomic<std::int64_t> active_connections_{0};
  std::atomic<std::int64_t> connections_total_{0};

  /// Process identity reported by `stats` (pid + wall-clock start time +
  /// uptime): what a supervisor needs to notice that the process behind an
  /// endpoint is not the one it last spoke to (a silent restart).
  std::int64_t start_unix_ms_ = 0;
  util::Timer uptime_;

  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace lid::serve
