#include "serve/cluster.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <utility>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/session.hpp"
#include "util/json.hpp"

namespace lid::serve {
namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kIo, what + ": " + std::strerror(errno)};
}

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// A worker response must be a JSON object with a boolean `ok` to be
/// forwarded; anything else (torn line, injected garbage) is a transport
/// failure and the request fails over.
bool well_formed_response(const std::string& line, util::Json* parsed_out) {
  const util::JsonParse parsed = util::json_parse(line);
  if (!parsed || !parsed.value.is_object()) return false;
  const util::Json* ok = parsed.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) return false;
  if (parsed_out != nullptr) *parsed_out = parsed.value;
  return true;
}

/// The `error.code` of a well-formed failure response ("" for ok:true).
std::string response_error_code(const util::Json& response) {
  const util::Json* ok = response.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) return "";
  if (const util::Json* error = response.find("error");
      error != nullptr && error->is_object()) {
    if (const util::Json* code = error->find("code"); code != nullptr && code->is_string()) {
      return code->as_string();
    }
  }
  return "unknown";
}

}  // namespace

std::uint64_t HashRing::hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

void HashRing::add(int worker) {
  if (!workers_.insert(worker).second) return;
  for (int r = 0; r < replicas_; ++r) {
    ring_.emplace(hash("vnode-" + std::to_string(worker) + "-" + std::to_string(r)), worker);
  }
}

void HashRing::remove(int worker) {
  if (workers_.erase(worker) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == worker ? ring_.erase(it) : std::next(it);
  }
}

int HashRing::primary(const std::string& key) const {
  if (ring_.empty()) return -1;
  auto it = ring_.lower_bound(hash(key));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<int> HashRing::route(const std::string& key, std::size_t n) const {
  std::vector<int> out;
  if (ring_.empty() || n == 0) return out;
  auto it = ring_.lower_bound(hash(key));
  for (std::size_t steps = 0; steps < ring_.size() && out.size() < std::min(n, workers_.size());
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) out.push_back(it->second);
  }
  return out;
}

/// One worker of the cluster: spec, child pid (spawned), health/identity
/// from the prober, breaker state, and the per-generation set of models the
/// router knows to be registered there.
struct Cluster::Worker {
  WorkerSpec spec;
  int index = 0;
  pid_t child_pid = -1;  ///< spawned child; -1 for adopted workers

  std::atomic<bool> healthy{false};
  std::atomic<bool> draining{false};
  std::atomic<int> probe_failures{0};
  /// Bumped whenever the worker's identity changes (restart-worker, or a
  /// silent restart detected by the prober). Everything the router believed
  /// about the old process — registered models, breaker — dies with it.
  std::atomic<std::int64_t> generation{1};
  std::atomic<std::int64_t> reported_pid{0};
  std::atomic<std::int64_t> reported_start_unix_ms{0};

  std::atomic<std::int64_t> outstanding{0};  ///< in-flight forwards
  std::atomic<std::int64_t> forwarded{0};
  std::atomic<std::int64_t> forward_failures{0};
  std::atomic<std::int64_t> probes_ok{0};
  std::atomic<std::int64_t> probes_failed{0};

  std::mutex breaker_mutex;
  int consecutive_transport_failures = 0;
  bool breaker_open = false;
  util::Timer breaker_opened_at;

  /// Models registered on this worker, valid for `models_generation` only.
  std::mutex models_mutex;
  std::int64_t models_generation = 1;
  std::set<std::string> registered;

  void bump_generation() {
    generation.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(models_mutex);
      models_generation = generation.load();
      registered.clear();
    }
    const std::lock_guard<std::mutex> lock(breaker_mutex);
    consecutive_transport_failures = 0;
    breaker_open = false;
  }

  bool knows_model(const std::string& fingerprint) {
    const std::lock_guard<std::mutex> lock(models_mutex);
    return models_generation == generation.load() && registered.count(fingerprint) > 0;
  }

  void note_model(const std::string& fingerprint) {
    const std::lock_guard<std::mutex> lock(models_mutex);
    if (models_generation != generation.load()) {
      models_generation = generation.load();
      registered.clear();
    }
    registered.insert(fingerprint);
  }

  void forget_model(const std::string& fingerprint) {
    const std::lock_guard<std::mutex> lock(models_mutex);
    registered.erase(fingerprint);
  }
};

/// One accepted client connection: the fd, negotiated protocol, and this
/// connection's cached backend connections (thread-confined to the
/// connection thread — forwarding is synchronous, so no locking).
struct Cluster::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  int protocol = 1;
  /// Lazily connected backend per worker, tagged with the worker generation
  /// it was opened against (a restart invalidates it).
  struct Backend {
    std::unique_ptr<Client> client;
    std::int64_t generation = 0;
  };
  std::vector<Backend> backends;

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), ring_(options_.ring_replicas) {
  if (options_.eject_after < 1) options_.eject_after = 1;
  for (std::size_t i = 0; i < options_.workers.size(); ++i) {
    auto worker = std::make_unique<Worker>();
    worker->spec = options_.workers[i];
    worker->index = static_cast<int>(i);
    workers_.push_back(std::move(worker));
  }
}

Cluster::~Cluster() {
  request_stop();
  wait();
}

void Cluster::log_line(const std::string& event, const Worker* worker,
                       const std::string& detail) {
  if (options_.log == nullptr) return;
  util::JsonWriter w;
  w.begin_object();
  w.key("cluster").value(event);
  if (worker != nullptr) {
    w.key("worker").value(worker->index);
    w.key("generation").value(worker->generation.load());
  }
  if (!detail.empty()) w.key("detail").value(detail);
  w.end_object();
  static std::mutex log_mutex;
  const std::lock_guard<std::mutex> lock(log_mutex);
  *options_.log << w.str() << '\n';
}

Status Cluster::spawn_worker(Worker& worker) {
  if (options_.serve_binary.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "worker " + std::to_string(worker.index) + " wants spawning but no "
                 "serve_binary is configured"};
  }
  std::vector<std::string> args = {
      options_.serve_binary,
      "--socket", worker.spec.unix_socket,
      "--workers", std::to_string(options_.serve_threads),
      "--queue-capacity", std::to_string(options_.serve_queue_capacity),
      "--quiet",
  };
  if (!worker.spec.fault_plan.empty()) {
    args.push_back("--fault-plan");
    args.push_back(worker.spec.fault_plan);
  }
  if (!worker.spec.pid_file.empty()) {
    args.push_back("--pid-file");
    args.push_back(worker.spec.pid_file);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  // A stale socket file from a previous (killed) worker would make the
  // child's bind fail; lid_serve itself also clears stale sockets, but a
  // fresh spawn over a live old child must not race that, so restart_worker
  // reaps first.
  const pid_t pid = ::fork();
  if (pid < 0) return errno_error("fork");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // exec failed; exit hard without running atexit handlers.
    ::_exit(127);
  }
  worker.child_pid = pid;
  log_line("spawn", &worker, "pid " + std::to_string(pid));
  return Unit{};
}

void Cluster::reap_worker(Worker& worker) {
  if (worker.child_pid <= 0) return;
  int status = 0;
  const pid_t reaped = ::waitpid(worker.child_pid, &status, WNOHANG);
  if (reaped == worker.child_pid) {
    log_line("reaped", &worker, "exit status " + std::to_string(status));
    worker.child_pid = -1;
  }
}

bool Cluster::probe_worker(Worker& worker) {
  SessionOptions session_options;
  session_options.hello = false;  // plain v1 probe
  session_options.connect_timeout_ms = options_.connect_timeout_ms;
  session_options.timeout_ms = options_.probe_timeout_ms;
  Result<Session> connected = Session::connect_unix(worker.spec.unix_socket, session_options);
  bool ok = false;
  if (connected) {
    Session session = std::move(connected).value();
    const Result<std::string> response = session.call("{\"verb\":\"stats\"}");
    util::Json parsed;
    if (response && well_formed_response(*response, &parsed) &&
        response_error_code(parsed).empty()) {
      ok = true;
      // Identity tracking: a changed pid or start time is a restart the
      // router did not perform — distrust everything about the old process.
      std::int64_t pid = 0;
      std::int64_t start_ms = 0;
      if (const util::Json* result = parsed.find("result");
          result != nullptr && result->is_object()) {
        if (const util::Json* v = result->find("pid"); v != nullptr && v->is_number()) {
          pid = v->as_int();
        }
        if (const util::Json* v = result->find("start_unix_ms");
            v != nullptr && v->is_number()) {
          start_ms = v->as_int();
        }
      }
      const std::int64_t old_pid = worker.reported_pid.exchange(pid);
      const std::int64_t old_start = worker.reported_start_unix_ms.exchange(start_ms);
      if (old_pid != 0 && (old_pid != pid || old_start != start_ms)) {
        silent_restarts_.fetch_add(1);
        worker.bump_generation();
        log_line("silent-restart", &worker,
                 "pid " + std::to_string(old_pid) + " -> " + std::to_string(pid));
      }
    }
  }
  if (ok) {
    worker.probes_ok.fetch_add(1);
    worker.probe_failures.store(0);
    if (!worker.healthy.exchange(true)) log_line("rejoined", &worker, "probe succeeded");
    // A live probe is better evidence than a stale breaker.
    const std::lock_guard<std::mutex> lock(worker.breaker_mutex);
    worker.consecutive_transport_failures = 0;
    worker.breaker_open = false;
  } else {
    worker.probes_failed.fetch_add(1);
    const int failures = worker.probe_failures.fetch_add(1) + 1;
    if (failures >= options_.eject_after && worker.healthy.exchange(false)) {
      ejections_.fetch_add(1);
      log_line("ejected", &worker, std::to_string(failures) + " consecutive probe failures");
    }
    reap_worker(worker);  // a dead spawned child becomes visible here
  }
  return ok;
}

void Cluster::prober_loop() {
  while (!stop_requested_.load()) {
    for (const std::unique_ptr<Worker>& worker : workers_) {
      if (stop_requested_.load()) return;
      probe_worker(*worker);
    }
    // Finite dozes so a stop request is honored promptly.
    double remaining = options_.probe_interval_ms;
    while (remaining > 0.0 && !stop_requested_.load()) {
      const double nap = std::min(remaining, 20.0);
      sleep_ms(nap);
      remaining -= nap;
    }
  }
}

Status Cluster::wait_for_worker(Worker& worker, double timeout_ms) {
  util::Timer waited;
  while (waited.elapsed_ms() < timeout_ms) {
    if (probe_worker(worker)) return Unit{};
    sleep_ms(std::min(50.0, options_.probe_interval_ms));
  }
  return Error{ErrorCode::kTimeout, "worker " + std::to_string(worker.index) + " ('" +
                                        worker.spec.unix_socket + "') not answering probes after " +
                                        std::to_string(timeout_ms) + " ms"};
}

Status Cluster::start() {
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (started_) return Error{ErrorCode::kInvalidArgument, "Cluster::start called twice"};
    started_ = true;
  }
  if (workers_.empty()) {
    return Error{ErrorCode::kInvalidArgument, "a cluster needs at least one worker"};
  }

  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->spec.spawn) {
      const Status spawned = spawn_worker(*worker);
      if (!spawned) return spawned.error();
    }
  }
  // Workers are unreliable by assumption, at startup too: wait for each, but
  // a worker that will not answer (its fault plan may be eating the probes)
  // starts ejected and re-enters routing when a probe finally lands. Only a
  // cluster with no healthy worker at all refuses to start.
  for (const std::unique_ptr<Worker>& worker : workers_) {
    const Status up = wait_for_worker(*worker, 5'000.0);
    if (!up) log_line("start-unhealthy", worker.get(), up.error().message);
  }
  if (std::none_of(workers_.begin(), workers_.end(),
                   [](const std::unique_ptr<Worker>& w) { return w->healthy.load(); })) {
    return Error{ErrorCode::kIo, "no worker answered a startup probe"};
  }
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    for (const std::unique_ptr<Worker>& worker : workers_) ring_.add(worker->index);
  }

  // Front door (same shape as Server::start).
  if (!options_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Error{ErrorCode::kInvalidArgument,
                   "unix socket path too long: " + options_.unix_socket};
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_error("socket(AF_UNIX)");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Error error = errno_error("bind('" + options_.unix_socket + "')");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return error;
    }
    unlink_on_close_ = true;
    endpoint_ = "unix:" + options_.unix_socket;
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_error("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Error{ErrorCode::kInvalidArgument, "bad host address '" + options_.host + "'"};
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Error error = errno_error("bind(" + options_.host + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return error;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      resolved_port_ = ntohs(bound.sin_port);
    }
    endpoint_ = "tcp:" + options_.host + ":" + std::to_string(resolved_port_);
  } else {
    return Error{ErrorCode::kInvalidArgument, "no endpoint: set unix_socket or tcp_port"};
  }
  if (::listen(listen_fd_, 64) != 0) {
    const Error error = errno_error("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  if (::pipe(stop_pipe_) != 0) {
    const Error error = errno_error("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  for (const int fd : stop_pipe_) ::fcntl(fd, F_SETFD, FD_CLOEXEC);

  accept_thread_ = std::thread([this] { accept_loop(); });
  prober_thread_ = std::thread([this] { prober_loop(); });
  log_line("started", nullptr,
           endpoint_ + ", " + std::to_string(workers_.size()) + " workers");
  return Unit{};
}

void Cluster::request_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Cluster::stop() {
  request_stop();
  wait();
}

void Cluster::wait() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (finished_ || !started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  stop_requested_.store(true);
  if (prober_thread_.joinable()) prober_thread_.join();
  {
    const std::lock_guard<std::mutex> connections_lock(connections_mutex_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (unlink_on_close_) ::unlink(options_.unix_socket.c_str());
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  // Spawned workers drain and exit on SIGTERM; reap them so no zombies
  // outlive the router.
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->child_pid > 0) ::kill(worker->child_pid, SIGTERM);
  }
  for (const std::unique_ptr<Worker>& worker : workers_) {
    if (worker->child_pid > 0) {
      int status = 0;
      ::waitpid(worker->child_pid, &status, 0);
      worker->child_pid = -1;
    }
  }
  finished_ = true;
}

void Cluster::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ::fcntl(client, F_SETFD, FD_CLOEXEC);
    auto connection = std::make_shared<Connection>();
    connection->fd = client;
    connection->id = next_connection_id_.fetch_add(1) + 1;
    connection->backends.resize(workers_.size());
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back([this, connection = std::move(connection)]() mutable {
      connection_loop(std::move(connection));
    });
  }
  stop_requested_.store(true);
}

void Cluster::connection_loop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[65536];
  while (!stop_requested_.load()) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) break;
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));

    bool hangup = false;
    while (!hangup && !buffer.empty()) {
      if (starts_frame(buffer)) {
        const FrameDecode frame = decode_frame(buffer, options_.max_request_bytes);
        if (frame.status == FrameStatus::kNeedMore) break;
        if (frame.status == FrameStatus::kBad) {
          const std::string line =
              error_line("null", "", frame.error_code, frame.error, connection->protocol);
          const std::string framed = frame_message(line);
          (void)::send(connection->fd, framed.data(), framed.size(), MSG_NOSIGNAL);
          hangup = true;
          break;
        }
        std::string payload = frame.payload;
        buffer.erase(0, frame.consumed);
        handle_message(*connection, std::move(payload), /*binary=*/true);
        continue;
      }
      const std::size_t newline = buffer.find('\n');
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      handle_message(*connection, std::move(line), /*binary=*/false);
    }
    if (hangup) break;
    if (!starts_frame(buffer) && buffer.size() > options_.max_request_bytes) {
      const std::string line =
          error_line("null", "", codes::kTooLarge,
                     "request line exceeds " + std::to_string(options_.max_request_bytes) +
                         " bytes",
                     connection->protocol);
      const std::string framed = line + "\n";
      (void)::send(connection->fd, framed.data(), framed.size(), MSG_NOSIGNAL);
      break;
    }
  }
}

namespace {

/// Writes one response (in the transport of its request) to the client.
void send_to_client(int fd, const std::string& line, bool binary) {
  std::string framed = binary ? frame_message(line) : line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; drop the response
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

void Cluster::handle_message(Connection& connection, std::string text, bool binary) {
  if (!binary && !text.empty() && text.back() == '\r') text.pop_back();
  if (text.empty()) return;
  if (text.size() > options_.max_request_bytes) {
    send_to_client(connection.fd,
                   error_line("null", "", codes::kTooLarge,
                              "request of " + std::to_string(text.size()) +
                                  " bytes exceeds the limit of " +
                                  std::to_string(options_.max_request_bytes),
                              connection.protocol),
                   binary);
    return;
  }

  // Router-handled verbs peek at the request; everything else forwards
  // verbatim (workers answer their own parse errors, keeping the router
  // transparent).
  std::string verb;
  if (const util::JsonParse parsed = util::json_parse(text);
      parsed && parsed.value.is_object()) {
    if (const util::Json* v = parsed.value.find("verb"); v != nullptr && v->is_string()) {
      verb = v->as_string();
    }
  }
  if (verb == "hello") {
    handle_hello(connection, text, binary);
    return;
  }
  if (verb == "cluster-stats" || verb == "drain-worker" || verb == "rejoin-worker" ||
      verb == "restart-worker") {
    handle_admin(connection, verb, text, binary);
    return;
  }
  if (verb == "stats") {
    handle_aggregate_stats(connection, text, binary);
    return;
  }

  admitted_.fetch_add(1);
  const std::string response = forward(connection, text);
  send_to_client(connection.fd, response, binary);
}

void Cluster::handle_hello(Connection& connection, const std::string& text, bool binary) {
  const Result<Request> parsed = parse_request(text);
  if (!parsed) {
    send_to_client(connection.fd,
                   error_line("null", "hello", wire_code(parsed.error().code),
                              parsed.error().message, connection.protocol),
                   binary);
    return;
  }
  const Request& request = *parsed;
  int wanted = kProtocolVersion;
  if (const util::Json* v = request.args.find("protocol"); v != nullptr && v->is_number()) {
    wanted = static_cast<int>(v->as_int());
  }
  if (wanted < kProtocolVersionMin || wanted > kProtocolVersion) {
    send_to_client(
        connection.fd,
        response_line(request,
                      Outcome::failure(codes::kUnsupportedVersion,
                                       "protocol " + std::to_string(wanted) +
                                           " is not supported (this router speaks " +
                                           std::to_string(kProtocolVersionMin) + ".." +
                                           std::to_string(kProtocolVersion) + ")"),
                      0.0, 0.0, connection.protocol),
        binary);
    return;
  }
  connection.protocol = wanted;
  util::JsonWriter w;
  w.begin_object();
  w.key("protocol").value(wanted);
  w.key("server").value("lid_cluster");
  w.key("transports").begin_array().value("ndjson").value("binary").end_array();
  w.key("transport").value(binary ? "binary" : "ndjson");
  w.key("max_request_bytes").value(options_.max_request_bytes);
  w.key("workers").value(static_cast<std::int64_t>(workers_.size()));
  w.end_object();
  send_to_client(connection.fd,
                 response_line(request, Outcome::success(w.str()), 0.0, 0.0, wanted), binary);
}

std::string Cluster::route_key(const std::string& line, std::string* model_fingerprint,
                               std::string* netlist_text, std::string* verb) {
  const util::JsonParse parsed = util::json_parse(line);
  if (!parsed || !parsed.value.is_object()) return "";
  if (const util::Json* v = parsed.value.find("verb"); v != nullptr && v->is_string()) {
    *verb = v->as_string();
  }
  if (const util::Json* m = parsed.value.find("model"); m != nullptr && m->is_string()) {
    *model_fingerprint = m->as_string();
    return *model_fingerprint;
  }
  if (const util::Json* n = parsed.value.find("netlist"); n != nullptr && n->is_string()) {
    *netlist_text = n->as_string();
    return "netlist-" + std::to_string(HashRing::hash(*netlist_text));
  }
  return "";
}

bool Cluster::usable(const Worker& worker) const {
  if (!worker.healthy.load() || worker.draining.load()) return false;
  if (options_.breaker_threshold > 0) {
    const std::lock_guard<std::mutex> lock(
        const_cast<Worker&>(worker).breaker_mutex);
    if (worker.breaker_open &&
        worker.breaker_opened_at.elapsed_ms() < options_.breaker_cooldown_ms) {
      return false;  // open; half-open (cooldown elapsed) counts as usable
    }
  }
  return true;
}

void Cluster::note_forward_failure(Worker& worker) {
  worker.forward_failures.fetch_add(1);
  if (options_.breaker_threshold <= 0) return;
  const std::lock_guard<std::mutex> lock(worker.breaker_mutex);
  if (++worker.consecutive_transport_failures >= options_.breaker_threshold) {
    worker.breaker_open = true;
    worker.breaker_opened_at = util::Timer();
  }
}

void Cluster::note_forward_success(Worker& worker) {
  const std::lock_guard<std::mutex> lock(worker.breaker_mutex);
  worker.consecutive_transport_failures = 0;
  worker.breaker_open = false;
}

std::vector<Cluster::Worker*> Cluster::candidates(const std::string& key) {
  std::vector<int> order;
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    if (key.empty()) {
      // No affinity: start from a rotating ring position for spread.
      order = ring_.route("rr-" + std::to_string(round_robin_.fetch_add(1)), workers_.size());
    } else {
      order = ring_.route(key, workers_.size());
    }
  }
  std::vector<Worker*> usable_first;
  std::vector<Worker*> last_resort;
  for (const int index : order) {
    Worker& worker = *workers_[static_cast<std::size_t>(index)];
    if (usable(worker)) {
      usable_first.push_back(&worker);
    } else if (!worker.draining.load()) {
      // Unhealthy/broken workers are still tried last — between probe
      // intervals this is what notices a recovery first, and when every
      // worker looks down it beats failing without trying.
      last_resort.push_back(&worker);
    }
  }
  usable_first.insert(usable_first.end(), last_resort.begin(), last_resort.end());
  return usable_first;
}

bool Cluster::forward_once(Connection& connection, Worker& worker, const std::string& line,
                           std::string& response_out) {
  Connection::Backend& backend = connection.backends[static_cast<std::size_t>(worker.index)];
  const std::int64_t generation = worker.generation.load();
  if (backend.client == nullptr || backend.generation != generation) {
    backend.client.reset();
    SessionOptions session_options;
    session_options.hello = false;  // v1 upstream: forwarded lines carry everything
    session_options.connect_timeout_ms = options_.connect_timeout_ms;
    session_options.timeout_ms = options_.forward_timeout_ms;
    Result<Client> fresh = Client::connect_unix(worker.spec.unix_socket, session_options);
    if (!fresh) {
      note_forward_failure(worker);
      return false;
    }
    backend.client = std::make_unique<Client>(std::move(fresh).value());
    backend.generation = generation;
  }
  worker.outstanding.fetch_add(1);
  const Status sent = backend.client->send_line(line);
  Result<std::string> response =
      sent ? backend.client->recv_line(options_.forward_timeout_ms)
           : Result<std::string>(sent.error());
  worker.outstanding.fetch_sub(1);
  if (!response || !well_formed_response(*response, nullptr)) {
    // Torn line, garbage, EOF, timeout: drop the backend (it may be
    // mid-frame) and let the caller fail over.
    backend.client.reset();
    note_forward_failure(worker);
    return false;
  }
  worker.forwarded.fetch_add(1);
  note_forward_success(worker);
  response_out = std::move(response).value();
  return true;
}

bool Cluster::ensure_model(Connection& connection, Worker& worker,
                           const std::string& fingerprint) {
  if (worker.knows_model(fingerprint)) return true;
  std::string text;
  {
    const std::lock_guard<std::mutex> lock(models_mutex_);
    const auto it = model_texts_.find(fingerprint);
    if (it == model_texts_.end()) return false;  // not registered through us
    text = it->second;
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("verb").value("register-model");
  w.key("netlist").value(text);
  w.end_object();
  std::string response;
  if (!forward_once(connection, worker, w.str(), response)) return false;
  util::Json parsed;
  if (!well_formed_response(response, &parsed) || !response_error_code(parsed).empty()) {
    return false;
  }
  reregistrations_.fetch_add(1);
  worker.note_model(fingerprint);
  log_line("reregistered", &worker, fingerprint);
  return true;
}

std::string Cluster::forward(Connection& connection, const std::string& line) {
  std::string fingerprint;
  std::string netlist;
  std::string verb;
  const std::string key = route_key(line, &fingerprint, &netlist, &verb);

  // register-model: canonicalize router-side so the routing key equals the
  // canonical fingerprint later model-addressed requests will carry, and
  // remember the text for failover re-registration. A netlist the router
  // cannot parse routes by raw bytes and lets the worker phrase the error.
  std::string canonical_fingerprint;
  if (verb == "register-model" && !netlist.empty()) {
    if (const Result<Instance> instance = parse_netlist(netlist)) {
      if (const Result<std::string> canonical = netlist_text(*instance)) {
        canonical_fingerprint = Registry::fingerprint(*canonical);
        const std::lock_guard<std::mutex> lock(models_mutex_);
        model_texts_[canonical_fingerprint] = *canonical;
      }
    }
  }
  const std::string effective_key =
      !canonical_fingerprint.empty() ? canonical_fingerprint : key;

  const std::vector<Worker*> order = candidates(effective_key);
  std::string response;
  int hops = 0;
  for (Worker* worker : order) {
    ++hops;
    if (hops > 1) failovers_.fetch_add(1);
    // Model-addressed request: make sure the target holds the model before
    // asking, so a failover target answers instead of `unknown_model`.
    if (!fingerprint.empty()) (void)ensure_model(connection, *worker, fingerprint);
    if (!forward_once(connection, *worker, line, response)) continue;
    util::Json parsed;
    if (well_formed_response(response, &parsed)) {
      const std::string code = response_error_code(parsed);
      if (code == codes::kUnknownModel && !fingerprint.empty() &&
          ensure_model(connection, *worker, fingerprint)) {
        // The worker lost the model (eviction, restart between ensure and
        // forward): re-register and replay once on the same worker.
        if (!forward_once(connection, *worker, line, response)) continue;
        if (!well_formed_response(response, &parsed)) continue;
      }
      if (code == codes::kShuttingDown) continue;  // worker draining: fail over
    }
    if (verb == "register-model" && !canonical_fingerprint.empty() &&
        response_error_code(parsed).empty()) {
      worker->note_model(canonical_fingerprint);
    }
    if (verb == "evict-model" && !fingerprint.empty()) {
      worker->forget_model(fingerprint);
      const std::lock_guard<std::mutex> lock(models_mutex_);
      model_texts_.erase(fingerprint);
    }
    completed_.fetch_add(1);
    return response;
  }

  failed_.fetch_add(1);
  // Echo the id if the request parses; "null" otherwise.
  std::string id_json = "null";
  if (const Result<Request> request = parse_request(line)) {
    id_json = request_id_json(*request);
  }
  return error_line(id_json, verb, codes::kUpstreamUnavailable,
                    "no worker could serve the request (" + std::to_string(hops) +
                        " of " + std::to_string(workers_.size()) + " workers tried)",
                    connection.protocol);
}

void Cluster::handle_admin(Connection& connection, const std::string& verb,
                           const std::string& text, bool binary) {
  const Result<Request> parsed = parse_request(text);
  if (!parsed) {
    send_to_client(connection.fd,
                   error_line("null", verb, wire_code(parsed.error().code),
                              parsed.error().message, connection.protocol),
                   binary);
    return;
  }
  const Request& request = *parsed;

  if (verb == "cluster-stats") {
    send_to_client(connection.fd,
                   response_line(request, Outcome::success(cluster_stats_json()), 0.0, 0.0,
                                 connection.protocol),
                   binary);
    return;
  }

  const util::Json* index_arg = request.args.find("worker");
  if (index_arg == nullptr || !index_arg->is_number()) {
    send_to_client(connection.fd,
                   response_line(request,
                                 Outcome::failure(codes::kInvalidArgument,
                                                  "'worker' must be a worker index"),
                                 0.0, 0.0, connection.protocol),
                   binary);
    return;
  }
  const std::int64_t index = index_arg->as_int();
  if (index < 0 || index >= static_cast<std::int64_t>(workers_.size())) {
    send_to_client(
        connection.fd,
        response_line(request,
                      Outcome::failure(codes::kInvalidArgument,
                                       "worker " + std::to_string(index) + " out of range (" +
                                           std::to_string(workers_.size()) + " workers)"),
                      0.0, 0.0, connection.protocol),
        binary);
    return;
  }

  double timeout_ms = 30'000.0;
  if (const util::Json* t = request.args.find("timeout_ms"); t != nullptr && t->is_number()) {
    timeout_ms = static_cast<double>(t->as_int());
  }
  Status status = Unit{};
  if (verb == "drain-worker") {
    status = drain_worker(static_cast<std::size_t>(index), timeout_ms);
  } else if (verb == "rejoin-worker") {
    status = rejoin_worker(static_cast<std::size_t>(index));
  } else {
    status = restart_worker(static_cast<std::size_t>(index), timeout_ms);
  }
  if (!status) {
    send_to_client(connection.fd,
                   response_line(request,
                                 Outcome::failure(wire_code(status.error().code),
                                                  status.error().message),
                                 0.0, 0.0, connection.protocol),
                   binary);
    return;
  }
  const Worker& worker = *workers_[static_cast<std::size_t>(index)];
  util::JsonWriter w;
  w.begin_object();
  w.key("worker").value(index);
  w.key("action").value(verb);
  w.key("healthy").value(worker.healthy.load());
  w.key("draining").value(worker.draining.load());
  w.key("generation").value(worker.generation.load());
  w.end_object();
  send_to_client(connection.fd,
                 response_line(request, Outcome::success(w.str()), 0.0, 0.0,
                               connection.protocol),
                 binary);
}

void Cluster::handle_aggregate_stats(Connection& connection, const std::string& text,
                                     bool binary) {
  const Result<Request> parsed = parse_request(text);
  if (!parsed) {
    send_to_client(connection.fd,
                   error_line("null", "stats", wire_code(parsed.error().code),
                              parsed.error().message, connection.protocol),
                   binary);
    return;
  }
  // Live-sum the workers' own stats: pool counters and the registry block
  // (which loadgen's hit-rate probe reads), in the single-server shape.
  std::int64_t submitted = 0;
  std::int64_t executed = 0;
  std::int64_t shed = 0;
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> registry_counters;
  int reachable = 0;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::string response;
    if (!forward_once(connection, *worker, "{\"verb\":\"stats\"}", response)) continue;
    util::Json envelope;
    if (!well_formed_response(response, &envelope) ||
        !response_error_code(envelope).empty()) {
      continue;
    }
    const util::Json* result = envelope.find("result");
    if (result == nullptr || !result->is_object()) continue;
    ++reachable;
    if (const util::Json* v = result->find("submitted"); v != nullptr && v->is_number()) {
      submitted += v->as_int();
    }
    if (const util::Json* v = result->find("executed"); v != nullptr && v->is_number()) {
      executed += v->as_int();
    }
    if (const util::Json* v = result->find("shed"); v != nullptr && v->is_number()) {
      shed += v->as_int();
    }
    if (const util::Json* c = result->find("counters"); c != nullptr && c->is_object()) {
      for (const auto& [name, value] : c->members()) {
        if (value.is_number()) counters[name] += value.as_int();
      }
    }
    if (const util::Json* r = result->find("registry"); r != nullptr && r->is_object()) {
      for (const auto& [name, value] : r->members()) {
        if (value.is_number()) registry_counters[name] += value.as_int();
      }
    }
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("cluster").value(true);
  w.key("workers").value(static_cast<std::int64_t>(workers_.size()));
  w.key("workers_reachable").value(reachable);
  w.key("admitted").value(admitted_.load());
  w.key("completed").value(completed_.load());
  w.key("failed").value(failed_.load());
  w.key("failovers").value(failovers_.load());
  w.key("submitted").value(submitted);
  w.key("executed").value(executed);
  w.key("shed").value(shed);
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.key(name).value(value);
  w.end_object();
  w.key("registry").begin_object();
  for (const auto& [name, value] : registry_counters) w.key(name).value(value);
  w.end_object();
  w.end_object();
  send_to_client(connection.fd,
                 response_line(*parsed, Outcome::success(w.str()), 0.0, 0.0,
                               connection.protocol),
                 binary);
}

Status Cluster::drain_worker(std::size_t index, double timeout_ms) {
  if (index >= workers_.size()) {
    return Error{ErrorCode::kInvalidArgument, "worker index out of range"};
  }
  Worker& worker = *workers_[index];
  worker.draining.store(true);
  log_line("draining", &worker, "");
  util::Timer waited;
  while (worker.outstanding.load() > 0) {
    if (waited.elapsed_ms() > timeout_ms) {
      return Error{ErrorCode::kTimeout,
                   "worker " + std::to_string(index) + " still has " +
                       std::to_string(worker.outstanding.load()) +
                       " requests in flight after " + std::to_string(timeout_ms) + " ms"};
    }
    sleep_ms(1.0);
  }
  log_line("drained", &worker, "");
  return Unit{};
}

Status Cluster::rejoin_worker(std::size_t index) {
  if (index >= workers_.size()) {
    return Error{ErrorCode::kInvalidArgument, "worker index out of range"};
  }
  Worker& worker = *workers_[index];
  worker.draining.store(false);
  log_line("rejoin", &worker, "");
  return Unit{};
}

Status Cluster::restart_worker(std::size_t index, double timeout_ms) {
  if (index >= workers_.size()) {
    return Error{ErrorCode::kInvalidArgument, "worker index out of range"};
  }
  Worker& worker = *workers_[index];
  if (!worker.spec.spawn) {
    return Error{ErrorCode::kInvalidArgument,
                 "worker " + std::to_string(index) +
                     " is adopted, not spawned; restart it externally"};
  }
  const Status drained = drain_worker(index, timeout_ms);
  if (!drained) {
    worker.draining.store(false);
    return drained.error();
  }
  // The worker has no router traffic in flight; its own SIGTERM drain
  // finishes whatever other clients sent before exiting.
  if (worker.child_pid > 0) {
    ::kill(worker.child_pid, SIGTERM);
    int status = 0;
    ::waitpid(worker.child_pid, &status, 0);
    worker.child_pid = -1;
    log_line("stopped", &worker, "exit status " + std::to_string(status));
  }
  worker.healthy.store(false);
  worker.reported_pid.store(0);
  worker.reported_start_unix_ms.store(0);
  worker.bump_generation();
  const Status spawned = spawn_worker(worker);
  if (!spawned) {
    worker.draining.store(false);
    return spawned.error();
  }
  const Status up = wait_for_worker(worker, timeout_ms);
  if (!up) {
    worker.draining.store(false);
    return up.error();
  }
  worker.draining.store(false);
  log_line("restarted", &worker, "");
  return Unit{};
}

std::string Cluster::cluster_stats_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("workers").value(static_cast<std::int64_t>(workers_.size()));
  w.key("admitted").value(admitted_.load());
  w.key("completed").value(completed_.load());
  w.key("failed").value(failed_.load());
  w.key("failovers").value(failovers_.load());
  w.key("reregistrations").value(reregistrations_.load());
  w.key("ejections").value(ejections_.load());
  w.key("silent_restarts").value(silent_restarts_.load());
  {
    const std::lock_guard<std::mutex> lock(models_mutex_);
    w.key("known_models").value(static_cast<std::int64_t>(model_texts_.size()));
  }
  w.key("worker_state").begin_array();
  for (const std::unique_ptr<Worker>& worker : workers_) {
    bool breaker_open = false;
    {
      const std::lock_guard<std::mutex> lock(worker->breaker_mutex);
      breaker_open = worker->breaker_open;
    }
    std::size_t registered = 0;
    {
      const std::lock_guard<std::mutex> lock(worker->models_mutex);
      registered = worker->registered.size();
    }
    w.begin_object();
    w.key("index").value(worker->index);
    w.key("endpoint").value("unix:" + worker->spec.unix_socket);
    w.key("spawned").value(worker->spec.spawn);
    w.key("pid").value(worker->reported_pid.load());
    w.key("healthy").value(worker->healthy.load());
    w.key("draining").value(worker->draining.load());
    w.key("breaker_open").value(breaker_open);
    w.key("generation").value(worker->generation.load());
    w.key("start_unix_ms").value(worker->reported_start_unix_ms.load());
    w.key("outstanding").value(worker->outstanding.load());
    w.key("forwarded").value(worker->forwarded.load());
    w.key("forward_failures").value(worker->forward_failures.load());
    w.key("probes_ok").value(worker->probes_ok.load());
    w.key("probes_failed").value(worker->probes_failed.load());
    w.key("registered_models").value(static_cast<std::int64_t>(registered));
    if (!worker->spec.fault_plan.empty()) w.key("fault_plan").value(worker->spec.fault_plan);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace lid::serve
