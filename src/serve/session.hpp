// The protocol-v2 client API: a Session owns one connection plus its
// negotiated protocol/transport, and hands out typed ModelHandles.
//
// The intended shape of a v2 client program:
//
//   auto session = Session::connect_unix("/tmp/lid.sock");      // hello -> v2
//   auto model = session->register_model(netlist_text);         // once
//   auto payload = session->analyze(*model);                    // many times
//
// Registering is what buys the round-trip win: the server parses the netlist
// once, pools its analysis caches, and every subsequent `analyze` /
// `size-queues` / `lint` / `rate-safety` on the handle ships a ~60-byte
// fingerprint instead of the netlist text — with payloads byte-identical to
// inline requests by construction (registry.hpp).
//
// Transports: `SessionOptions::binary` selects the length-prefixed frame
// lane (frame.hpp) for requests; the server always answers in the request's
// transport, and `recv_message` accepts either, so a session never has to
// care which lane a response used.
//
// Compatibility: connecting with `hello = false` (or protocol = 1) yields a
// plain v1 NDJSON session, byte-identical to the legacy serve::Client — which
// is now a thin wrapper over this class (client.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "lid_api.hpp"

namespace lid::serve {

struct SessionOptions {
  /// Protocol to negotiate (1..kProtocolVersion). 1 skips negotiation
  /// entirely — a legacy NDJSON session.
  int protocol = 2;
  /// Send requests as binary frames instead of NDJSON lines. Requires
  /// protocol >= 2.
  bool binary = false;
  /// Send `hello` on connect. When false the session stays v1 and the
  /// server sees no traffic until the first real request.
  bool hello = true;
  /// Default receive timeout applied by call()/typed wrappers; 0 = forever.
  double timeout_ms = 0.0;
  /// Bound on connect() itself; 0 = the OS default (which can be minutes for
  /// TCP). A connection not established within the budget fails with
  /// kTimeout; a refused one still fails immediately with kIo.
  double connect_timeout_ms = 0.0;
};

/// A registered model: the content-address plus the server's registration
/// report. Cheap to copy; valid until evicted (a query on an evicted handle
/// fails with `unknown_model` — re-register and retry).
struct ModelHandle {
  std::string fingerprint;
  std::size_t bytes = 0;  ///< accounted base footprint on the server
  std::size_t cores = 0;
  std::size_t channels = 0;
  int relay_stations = 0;

  [[nodiscard]] bool valid() const { return !fingerprint.empty(); }
};

class Session {
 public:
  static Result<Session> connect_unix(const std::string& path, const SessionOptions& options = {});
  static Result<Session> connect_tcp(const std::string& host, int port,
                                     const SessionOptions& options = {});

  Session(Session&& other) noexcept;
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  void close();

  /// The negotiated protocol version (1 when hello was skipped or the
  /// server predates v2).
  [[nodiscard]] int protocol() const { return protocol_; }
  /// Whether requests go out as binary frames.
  [[nodiscard]] bool binary() const { return options_.binary; }

  /// Sends one JSON message in the session's transport (a newline is
  /// appended on the NDJSON lane if missing).
  Status send_message(const std::string& json);

  /// Blocks until one full message arrives and returns its JSON text —
  /// from either lane; frames and lines are detected per message. kIo on
  /// EOF, kTimeout after `timeout_ms` (> 0) with any partial input left
  /// buffered (reconnect, as RetryingClient does).
  Result<std::string> recv_message(double timeout_ms = 0.0);

  /// send_message + recv_message (with the session's default timeout).
  /// Correct while requests are issued one at a time on this session.
  Result<std::string> call(const std::string& json);

  /// Registers (or re-finds) a model on the server and returns its handle.
  Result<ModelHandle> register_model(const std::string& netlist_text);

  /// Forgets a registered model. kInvalidArgument with the server's
  /// `unknown_model` detail when the handle is not resident.
  Status evict_model(const ModelHandle& model);

  /// Runs `verb` against a registered model and returns the raw `result`
  /// payload. `extra_args_json` is an optional JSON object of verb
  /// arguments merged into the request (e.g. `{"solver":"lazy"}`).
  Result<std::string> query(const ModelHandle& model, const std::string& verb,
                            const std::string& extra_args_json = "");

  /// Typed conveniences over query(): the raw result payloads of the four
  /// model-addressed verbs.
  Result<std::string> analyze(const ModelHandle& model) { return query(model, "analyze"); }
  Result<std::string> size_queues(const ModelHandle& model, const std::string& extra_args_json = "") {
    return query(model, "size-queues", extra_args_json);
  }
  Result<std::string> lint(const ModelHandle& model) { return query(model, "lint"); }
  Result<std::string> rate_safety(const ModelHandle& model) { return query(model, "rate-safety"); }

  /// Raw result payloads of the connection-level verbs.
  Result<std::string> list_models();
  Result<std::string> stats();

 private:
  Session(int fd, SessionOptions options);

  /// Sends `hello` and records the negotiated protocol. A server that does
  /// not know the verb (pre-v2) downgrades the session to v1.
  Status handshake();

  int fd_ = -1;
  SessionOptions options_;
  int protocol_ = 1;
  std::string buffer_;
  std::uint64_t next_id_ = 0;
};

}  // namespace lid::serve
