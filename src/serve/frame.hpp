// Length-prefixed binary framing — the protocol-v2 transport lane.
//
// A frame is an 8-byte header followed by the payload:
//
//   offset 0   magic byte 0 (0xC5)
//   offset 1   magic byte 1 (0x1D)
//   offset 2   protocol version (2)
//   offset 3   flags (reserved; must be 0)
//   offset 4   payload length, u32 little-endian
//   offset 8   payload bytes
//
// The payload is the exact JSON text that the NDJSON lane would carry on one
// line (without the trailing newline), so correctness is transport-
// independent by construction: the two lanes differ only in how message
// boundaries are marked. Magic byte 0xC5 can never begin a JSON document,
// which lets a reader accept frames and NDJSON lines on the same connection
// without ambiguity — each message self-describes its transport, and
// responses are emitted in the transport their request arrived in.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace lid::serve {

inline constexpr unsigned char kFrameMagic0 = 0xC5;
inline constexpr unsigned char kFrameMagic1 = 0x1D;
inline constexpr unsigned char kFrameVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Wraps `payload` (one JSON message) into a binary frame.
std::string frame_message(std::string_view payload, unsigned char flags = 0);

/// True when `buffer` begins with the frame magic (and therefore cannot be
/// the start of an NDJSON line).
bool starts_frame(std::string_view buffer);

enum class FrameStatus {
  kNeedMore,  ///< header or payload incomplete; read more bytes
  kFrame,     ///< one complete frame decoded
  kBad,       ///< malformed header or oversized payload; the stream is dead
};

struct FrameDecode {
  FrameStatus status = FrameStatus::kNeedMore;
  std::string payload;            ///< valid when status == kFrame
  std::size_t consumed = 0;       ///< bytes to drop from the buffer (kFrame)
  const char* error_code = nullptr;  ///< a codes::* string when kBad
  std::string error;              ///< human-readable detail when kBad
};

/// Attempts to decode one frame from the front of `buffer`. Payloads longer
/// than `max_payload_bytes` are rejected as kBad (the length is known from
/// the header, so an oversized frame is refused before it is buffered).
FrameDecode decode_frame(std::string_view buffer, std::size_t max_payload_bytes);

}  // namespace lid::serve
