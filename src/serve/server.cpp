#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <thread>

#include "serve/frame.hpp"
#include "serve/registry.hpp"
#include "util/timer.hpp"

namespace lid::serve {
namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kIo, what + ": " + std::strerror(errno)};
}

/// True when `path` holds a Unix socket nobody is listening on anymore
/// (e.g. left behind by a killed daemon): connecting to it fails with
/// ECONNREFUSED.
bool is_stale_unix_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  const int saved_errno = errno;
  ::close(fd);
  return rc != 0 && saved_errno == ECONNREFUSED;
}

}  // namespace

/// One accepted client. The reader thread and any queued worker tasks share
/// ownership; the fd closes when the last reference drops, which is how a
/// drain naturally hangs up on clients once their responses are flushed.
struct Server::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::mutex write_mutex;
  /// Negotiated protocol version (1 until a successful `hello`). Atomic:
  /// the reader writes it, workers read it when formatting envelopes.
  std::atomic<int> protocol{1};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), faults_(options_.fault_plan) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  registry_ = std::make_unique<Registry>(
      RegistryOptions{options_.registry_max_bytes, options_.registry_max_models});
  start_unix_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

Server::~Server() {
  request_stop();
  wait();
}

Status Server::start() {
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (started_) return Error{ErrorCode::kInvalidArgument, "Server::start called twice"};
    started_ = true;
  }

  if (!options_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return Error{ErrorCode::kInvalidArgument,
                   "unix socket path longer than " + std::to_string(sizeof(addr.sun_path) - 1) +
                       " bytes: " + options_.unix_socket};
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(), sizeof(addr.sun_path) - 1);
    if (is_stale_unix_socket(options_.unix_socket)) ::unlink(options_.unix_socket.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_error("socket(AF_UNIX)");
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Error error = errno_error("bind('" + options_.unix_socket + "')");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return error;
    }
    unlink_on_close_ = true;
    endpoint_ = "unix:" + options_.unix_socket;
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_error("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Error{ErrorCode::kInvalidArgument, "bad host address '" + options_.host + "'"};
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const Error error = errno_error("bind(" + options_.host + ":" +
                                      std::to_string(options_.tcp_port) + ")");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return error;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      resolved_port_ = ntohs(bound.sin_port);
    }
    endpoint_ = "tcp:" + options_.host + ":" + std::to_string(resolved_port_);
  } else {
    return Error{ErrorCode::kInvalidArgument, "no endpoint: set unix_socket or tcp_port"};
  }

  if (::listen(listen_fd_, 64) != 0) {
    const Error error = errno_error("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  if (::pipe(stop_pipe_) != 0) {
    const Error error = errno_error("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  for (const int fd : stop_pipe_) ::fcntl(fd, F_SETFD, FD_CLOEXEC);

  pool_ = std::make_unique<engine::TaskPool>(
      engine::TaskPool::Options{options_.workers, options_.queue_capacity});
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Unit{};
}

void Server::request_stop() {
  // Async-signal-safe: one write(), no locks, no allocation.
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  wait();
}

void Server::wait() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (finished_ || !started_) return;

  // The accept thread exits only when the stop pipe fires; joining it is
  // the "wait until a stop was requested" step.
  if (accept_thread_.joinable()) accept_thread_.join();
  stop_requested_.store(true);

  // No new connections. Readers notice stop_requested_ and stop admitting
  // new requests; everything already admitted drains through the pool, and
  // the workers flush their responses before drain() returns.
  {
    const std::lock_guard<std::mutex> connections_lock(connections_mutex_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  if (pool_) pool_->drain();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (unlink_on_close_) ::unlink(options_.unix_socket.c_str());
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  finished_ = true;
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ::fcntl(client, F_SETFD, FD_CLOEXEC);
    auto connection = std::make_shared<Connection>();
    connection->fd = client;
    connection->id = next_connection_id_.fetch_add(1) + 1;
    connections_total_.fetch_add(1);
    active_connections_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, connection = std::move(connection)]() mutable {
          connection_loop(std::move(connection));
        });
  }
  stop_requested_.store(true);
}

void Server::connection_loop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[65536];
  while (!stop_requested_.load()) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);  // finite timeout: re-check stop flag
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    if ((pfd.revents & (POLLIN | POLLHUP)) == 0) break;
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // client hung up
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    metrics_.count("bytes_in", n);
    buffer.append(chunk, static_cast<std::size_t>(n));

    // Mixed-transport demultiplexing: a message starting with the frame
    // magic is a binary frame, anything else is an NDJSON line. The magic
    // byte can never begin JSON, so the two interleave without ambiguity.
    bool hangup = false;
    while (!hangup && !buffer.empty()) {
      if (starts_frame(buffer)) {
        const FrameDecode frame = decode_frame(buffer, options_.max_request_bytes);
        if (frame.status == FrameStatus::kNeedMore) break;
        if (frame.status == FrameStatus::kBad) {
          // Framing is lost (bad header or oversized length): answer once,
          // in kind, and hang up rather than resynchronize heuristically.
          respond(connection, error_line("null", "", frame.error_code, frame.error,
                                         connection->protocol.load()),
                  /*binary=*/true);
          metrics_.count("requests_rejected");
          hangup = true;
          break;
        }
        std::string payload = frame.payload;
        buffer.erase(0, frame.consumed);
        handle_message(connection, std::move(payload), /*binary=*/true);
        continue;
      }
      const std::size_t newline = buffer.find('\n');
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      handle_message(connection, std::move(line), /*binary=*/false);
    }
    if (hangup) break;

    if (!starts_frame(buffer) && buffer.size() > options_.max_request_bytes) {
      // A line that exceeds the limit before its newline arrives would
      // otherwise grow the buffer without bound. (Oversized frames are
      // rejected from their declared length by decode_frame above.)
      respond(connection,
              error_line("null", "", codes::kTooLarge,
                         "request line exceeds " + std::to_string(options_.max_request_bytes) +
                             " bytes",
                         connection->protocol.load()),
              /*binary=*/false);
      break;
    }
  }
  active_connections_.fetch_sub(1);
}

void Server::handle_message(const std::shared_ptr<Connection>& connection, std::string text,
                            bool binary) {
  if (!binary && !text.empty() && text.back() == '\r') text.pop_back();
  if (text.empty()) return;
  metrics_.count("requests_total");
  if (binary) metrics_.count("requests_binary");

  if (text.size() > options_.max_request_bytes) {
    metrics_.count("requests_rejected");
    respond(connection,
            error_line("null", "", codes::kTooLarge,
                       "request of " + std::to_string(text.size()) + " bytes exceeds the limit of " +
                           std::to_string(options_.max_request_bytes),
                       connection->protocol.load()),
            binary);
    return;
  }

  Result<Request> parsed = parse_request(text);
  if (!parsed) {
    metrics_.count("requests_rejected");
    respond(connection,
            error_line("null", "", wire_code(parsed.error().code), parsed.error().message,
                       connection->protocol.load()),
            binary);
    if (options_.log != nullptr) {
      Request unparsed;
      log_request(*connection, unparsed, wire_code(parsed.error().code), 0.0, 0.0);
    }
    return;
  }
  Request request = std::move(parsed).value();

  // `hello` negotiates the connection's protocol; it is answered by the
  // reader because it must take effect before any later request on this
  // connection is formatted.
  if (request.verb == "hello") {
    handle_hello(connection, request, binary);
    return;
  }

  // `stats` is answered by the reader so it works even when every worker is
  // busy — that is exactly when you want to see the queue.
  if (request.verb == "stats") {
    const util::Timer timer;
    const Outcome outcome = Outcome::success(stats_json());
    metrics_.count("requests_ok");
    metrics_.count("verb_stats");
    respond(connection,
            response_line(request, outcome, timer.elapsed_ms(), 0.0, connection->protocol.load()),
            binary);
    log_request(*connection, request, "ok", 0.0, timer.elapsed_ms());
    return;
  }

  const double deadline =
      request.deadline_ms > 0.0 ? request.deadline_ms : options_.default_deadline_ms;
  const std::string id_json = request_id_json(request);
  const bool has_id = request.has_id;
  const std::string raw_id = request.id;
  const std::string verb = request.verb;

  const engine::TaskPool::Submit submitted = pool_->submit(
      [this, connection, binary,
       request = std::move(request)](const engine::TaskPool::Context& context) {
        const util::Timer exec_timer;
        Outcome outcome;
        if (context.deadline_expired && request.on_deadline != OnDeadline::kDegrade) {
          outcome = Outcome::failure(
              codes::kDeadlineExceeded,
              "deadline expired after " + std::to_string(context.queue_wait_ms) +
                  " ms in the admission queue");
          metrics_.count("requests_deadline_exceeded");
        } else {
          // The context's cancel token carries the remaining deadline budget
          // (already expired on the degrade path), so in-flight solves stop
          // within one loop bound of expiry instead of holding this worker.
          const engine::Metrics::ScopedStage stage(metrics_, "exec_" + request.verb);
          ExecContext exec_context;
          exec_context.cancel = context.cancel;
          exec_context.deadline_expired = context.deadline_expired;
          exec_context.registry = registry_.get();
          outcome = execute(request, options_.limits, exec_context);
          metrics_.count(outcome.ok ? "requests_ok" : "requests_error");
          metrics_.count("verb_" + request.verb);
          if (outcome.degraded) metrics_.count("requests_degraded");
          if (outcome.lazy_iterations > 0) {
            metrics_.count("lazy_iterations", outcome.lazy_iterations);
            metrics_.count("lazy_cycles_generated", outcome.lazy_cycles_generated);
            metrics_.count("howard_warm_restarts", outcome.lazy_warm_restarts);
            if (outcome.lazy_fell_back) metrics_.count("lazy_fallbacks");
          }
          if (!outcome.ok && outcome.error_code == codes::kDeadlineExceeded) {
            metrics_.count("requests_deadline_exceeded");
          }
        }
        const double exec_ms = exec_timer.elapsed_ms();
        latency_.record(context.queue_wait_ms + exec_ms);
        respond(connection,
                response_line(request, outcome, exec_ms, context.queue_wait_ms,
                              connection->protocol.load()),
                binary);
        log_request(*connection, request,
                    outcome.ok ? "ok" : outcome.error_code, context.queue_wait_ms, exec_ms);
      },
      deadline);

  switch (submitted) {
    case engine::TaskPool::Submit::kAccepted: break;
    case engine::TaskPool::Submit::kShed: {
      metrics_.count("requests_shed");
      respond(connection,
              error_line(id_json, verb, codes::kOverloaded,
                         "admission queue full (" + std::to_string(pool_->queue_capacity()) +
                             " requests); retry later",
                         connection->protocol.load()),
              binary);
      Request shed_request;
      shed_request.verb = verb;
      shed_request.has_id = has_id;
      shed_request.id = raw_id;
      log_request(*connection, shed_request, codes::kOverloaded, 0.0, 0.0);
      break;
    }
    case engine::TaskPool::Submit::kClosed:
      metrics_.count("requests_rejected");
      respond(connection,
              error_line(id_json, verb, codes::kShuttingDown, "server is draining",
                         connection->protocol.load()),
              binary);
      break;
  }
}

void Server::handle_hello(const std::shared_ptr<Connection>& connection, const Request& request,
                          bool binary) {
  const util::Timer timer;
  metrics_.count("verb_hello");

  int wanted = kProtocolVersion;
  if (const util::Json* v = request.args.find("protocol"); v != nullptr && !v->is_null()) {
    if (!v->is_number()) {
      respond(connection,
              response_line(request,
                            Outcome::failure(codes::kInvalidArgument,
                                             "'protocol' must be a number"),
                            timer.elapsed_ms(), 0.0, connection->protocol.load()),
              binary);
      metrics_.count("requests_error");
      return;
    }
    wanted = static_cast<int>(v->as_int());
  }
  if (wanted < kProtocolVersionMin || wanted > kProtocolVersion) {
    respond(connection,
            response_line(request,
                          Outcome::failure(codes::kUnsupportedVersion,
                                           "protocol " + std::to_string(wanted) +
                                               " is not supported (this server speaks " +
                                               std::to_string(kProtocolVersionMin) + ".." +
                                               std::to_string(kProtocolVersion) + ")"),
                          timer.elapsed_ms(), 0.0, connection->protocol.load()),
            binary);
    metrics_.count("requests_error");
    return;
  }

  std::string transport = binary ? "binary" : "ndjson";
  if (const util::Json* t = request.args.find("transport"); t != nullptr && !t->is_null()) {
    const std::string value = t->is_string() ? t->as_string() : "";
    if (value != "ndjson" && value != "binary") {
      respond(connection,
              response_line(request,
                            Outcome::failure(codes::kInvalidArgument,
                                             "'transport' must be \"ndjson\" or \"binary\""),
                            timer.elapsed_ms(), 0.0, connection->protocol.load()),
              binary);
      metrics_.count("requests_error");
      return;
    }
    if (value == "binary" && wanted < 2) {
      respond(connection,
              response_line(request,
                            Outcome::failure(codes::kInvalidArgument,
                                             "the binary transport requires protocol >= 2"),
                            timer.elapsed_ms(), 0.0, connection->protocol.load()),
              binary);
      metrics_.count("requests_error");
      return;
    }
    transport = value;
  }

  connection->protocol.store(wanted);
  util::JsonWriter w;
  w.begin_object();
  w.key("protocol").value(wanted);
  w.key("server").value("lid_serve");
  w.key("transports").begin_array().value("ndjson").value("binary").end_array();
  w.key("transport").value(transport);
  w.key("max_request_bytes").value(options_.max_request_bytes);
  w.end_object();
  const Outcome outcome = Outcome::success(w.str());
  metrics_.count("requests_ok");
  // The hello response itself already speaks the negotiated protocol.
  respond(connection, response_line(request, outcome, timer.elapsed_ms(), 0.0, wanted), binary);
  log_request(*connection, request, "ok", 0.0, timer.elapsed_ms());
}

void Server::respond(const std::shared_ptr<Connection>& connection, const std::string& line,
                     bool binary) {
  // In kind: a frame for a framed request, a newline-terminated line
  // otherwise. The JSON bytes inside are identical either way.
  std::string framed;
  if (binary) {
    framed = frame_message(line);
  } else {
    framed = line;
    framed.push_back('\n');
  }

  if (faults_.active()) {
    const FaultDecision fault = faults_.decide();
    if (fault.stall_ms > 0.0) {
      // Worker stall: the response (and this worker) hang for a while.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(fault.stall_ms));
    }
    if (fault.any()) metrics_.count("faults_injected");
    if (fault.drop) {
      // Connection reset without a byte of response. shutdown(), not
      // close(): the reader thread still owns the fd (its recv returns 0
      // and the Connection destructor does the close).
      const std::lock_guard<std::mutex> lock(connection->write_mutex);
      ::shutdown(connection->fd, SHUT_RDWR);
      return;
    }
    if (fault.garbage) {
      // A complete line that is not valid JSON: a corrupted frame.
      framed = "!corrupted-frame #$%&\n";
    } else if (fault.torn) {
      // A prefix of the real response with no newline, then EOF: a torn
      // write / crash mid-response.
      framed.resize(std::max<std::size_t>(1, framed.size() / 2));
    }
    const std::lock_guard<std::mutex> lock(connection->write_mutex);
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n =
          ::send(connection->fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (fault.torn) ::shutdown(connection->fd, SHUT_RDWR);
    metrics_.count("bytes_out", static_cast<std::int64_t>(framed.size()));
    return;
  }

  const std::lock_guard<std::mutex> lock(connection->write_mutex);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the daemon.
    const ssize_t n =
        ::send(connection->fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client gone; drop the response
    }
    sent += static_cast<std::size_t>(n);
  }
  metrics_.count("bytes_out", static_cast<std::int64_t>(framed.size()));
}

void Server::log_request(const Connection& connection, const Request& request,
                         const std::string& status, double wait_ms, double exec_ms) {
  if (options_.log == nullptr) return;
  util::JsonWriter w;
  w.begin_object();
  w.key("conn").value(static_cast<std::int64_t>(connection.id));
  if (request.has_id) {
    w.key("id").value(request.id);
  } else {
    w.key("id").value_null();
  }
  w.key("verb").value(request.verb.empty() ? "-" : request.verb);
  w.key("status").value(status);
  w.key("wait_ms").value_fixed(wait_ms, 3);
  w.key("exec_ms").value_fixed(exec_ms, 3);
  w.key("queue_depth").value(static_cast<std::int64_t>(pool_ ? pool_->queue_depth() : 0));
  w.end_object();
  static std::mutex log_mutex;
  const std::lock_guard<std::mutex> lock(log_mutex);
  *options_.log << w.str() << '\n';
}

std::string Server::stats_json() const {
  util::JsonWriter w;
  w.begin_object();
  w.key("workers").value(options_.workers);
  w.key("queue_capacity").value(static_cast<std::int64_t>(options_.queue_capacity));
  w.key("queue_depth").value(static_cast<std::int64_t>(pool_ ? pool_->queue_depth() : 0));
  w.key("submitted").value(pool_ ? pool_->submitted() : 0);
  w.key("executed").value(pool_ ? pool_->executed() : 0);
  w.key("shed").value(pool_ ? pool_->shed() : 0);
  w.key("deadline_expired").value(pool_ ? pool_->expired() : 0);
  w.key("connections_total").value(connections_total_.load());
  w.key("active_connections").value(active_connections_.load());
  w.key("pid").value(static_cast<std::int64_t>(::getpid()));
  w.key("start_unix_ms").value(start_unix_ms_);
  w.key("uptime_ms").value(static_cast<std::int64_t>(uptime_.elapsed_ms()));
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics_.counters()) w.key(name).value(value);
  w.end_object();
  w.key("stages").begin_object();
  for (const auto& [name, stats] : metrics_.stages()) {
    w.key(name).begin_object();
    w.key("calls").value(stats.calls);
    w.key("wall_ms").value_fixed(stats.wall_ms, 3);
    w.key("cpu_ms").value_fixed(stats.cpu_ms, 3);
    w.end_object();
  }
  w.end_object();
  w.key("latency").raw(latency_.to_json());
  w.key("registry").raw(registry_->stats_json());
  if (faults_.active()) w.key("faults").raw(faults_.stats_json());
  w.end_object();
  return w.str();
}

}  // namespace lid::serve
