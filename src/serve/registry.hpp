// The server-side model registry: content-addressed, LRU-evicted storage of
// parsed netlists plus their pooled analysis state.
//
// A model is identified by a fingerprint of its *canonicalized* `.lis` text
// (parse, then re-serialize), so whitespace- and comment-only edits map to
// the same fingerprint. Each resident model pools:
//
//   * the parsed Instance (no per-request parse),
//   * an engine::AnalysisCache (expansions, MSTs, degradation/rate-safety
//     reports, the queue-sizing cycle enumeration, the Howard workspace),
//   * a payload memo: verb+args -> the exact result payload bytes, so a
//     repeated query is a lookup instead of a solve.
//
// Registered-model responses stay byte-identical to inline-netlist and
// direct-facade execution: the first computation of any payload runs through
// engine::analyze_cached / size_queues_cached (which share the facade's
// assembly code), acts on the instance parsed from the canonical text, and
// the memo replays those exact bytes. Equivalently: a registered-model
// request behaves as if the model's canonical text had been sent inline.
//
// Memory accounting (documented in docs/api-overview.md): per model,
//   bytes = canonical netlist text (exact)
//         + a fixed 256-byte handle overhead
//         + 64 bytes per core + 96 bytes per channel (Instance model)
//         + the payload memo (exact key + payload bytes, +32/entry).
// The registry evicts least-recently-used models whenever the accounted
// total exceeds `max_bytes` or residency exceeds `max_models`. Eviction is
// safe while a request is in flight on the evicted model: entries are
// shared_ptr-owned, so the in-flight worker keeps its entry alive and the
// registry merely forgets it (the same ownership idiom as Server's
// per-connection drain).
//
// The registry is thread-safe. Per-entry analysis state is NOT (AnalysisCache
// is single-threaded by design): workers lock Entry::mutex around cached
// execution, serializing concurrent queries on the *same* model while
// different models proceed in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/analysis_cache.hpp"
#include "lid_api.hpp"

namespace lid::serve {

struct RegistryOptions {
  /// Accounted-byte budget across all resident models. A single model whose
  /// base footprint exceeds this is refused (`registry_full`).
  std::size_t max_bytes = std::size_t{64} << 20;
  /// Resident-model cap; 0 disables registration entirely.
  std::size_t max_models = 64;
};

/// What `register-model` / `list-models` report about one model. `bytes` is
/// the base footprint (netlist + Instance model) — a pure function of the
/// netlist, so the register-model payload stays deterministic; memo growth
/// shows up in list-models' `resident_bytes` and the stats totals instead.
struct ModelInfo {
  std::string fingerprint;
  std::size_t bytes = 0;
  std::size_t cores = 0;
  std::size_t channels = 0;
  int relay_stations = 0;
};

class Registry {
 public:
  explicit Registry(RegistryOptions options = {});

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// One resident model. Entries are handed out as shared_ptrs: eviction
  /// drops the registry's reference, never the borrower's.
  struct Entry {
    std::string fingerprint;
    std::string canonical_text;
    Instance instance;  ///< parsed from canonical_text
    std::size_t base_bytes = 0;

    /// Serializes cached execution and memo access on this model.
    std::mutex mutex;
    std::unique_ptr<engine::AnalysisCache> cache;  ///< over instance.graph()
    /// verb+args -> result payload bytes (only ok, non-degraded outcomes).
    std::map<std::string, std::string> memo;

    /// Accounted memo bytes (atomic so list/stats read without the entry
    /// mutex). Updated by Registry::memoize under `mutex`.
    std::atomic<std::int64_t> memo_bytes{0};
    /// Lookup traffic on this model (for list-models).
    std::atomic<std::int64_t> hits{0};
  };

  /// The content address of `canonical_text` ("lis-" + 16 hex digits,
  /// FNV-1a 64). Callers canonicalize first; register_model does both.
  static std::string fingerprint(const std::string& canonical_text);

  /// Parses and canonicalizes `text`, then registers (or re-finds) the
  /// model, evicting LRU entries to fit. Errors: kParse for a bad netlist,
  /// kInvalidArgument when the model alone exceeds the budget or the
  /// registry is disabled (callers map this to `registry_full`).
  Result<ModelInfo> register_model(const std::string& text);

  /// The entry for `fingerprint`, bumping its LRU position, or nullptr when
  /// not resident. Counted as a registry hit/miss.
  std::shared_ptr<Entry> acquire(const std::string& fingerprint);

  /// Forgets the model. In-flight borrowers keep their entry alive.
  bool evict(const std::string& fingerprint);

  /// Resident models ordered by fingerprint (deterministic output).
  [[nodiscard]] std::vector<ModelInfo> list() const;

  /// Records a computed payload in `entry`'s memo with byte accounting,
  /// evicting *other* LRU models if the total overflows. Caller holds
  /// entry->mutex. No-op when the memo entry already exists.
  void memoize(Entry& entry, const std::string& key, const std::string& payload);

  /// Notes memo traffic (`stats` reporting; loadgen derives its hit rate
  /// from these).
  void note_memo(bool hit);

  struct Stats {
    std::size_t resident = 0;
    std::size_t bytes = 0;
    std::size_t max_bytes = 0;
    std::size_t max_models = 0;
    std::int64_t registered = 0;  ///< register-model calls that parsed
    std::int64_t evictions = 0;   ///< LRU + explicit evictions
    std::int64_t hits = 0;        ///< acquire() found the model
    std::int64_t misses = 0;      ///< acquire() missed (unknown_model)
    std::int64_t memo_hits = 0;   ///< payload served from the memo
    std::int64_t memo_misses = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// stats() as the compact JSON object embedded in the `stats` verb.
  [[nodiscard]] std::string stats_json() const;

 private:
  /// Drops LRU entries until the accounted total fits. `keep` is never
  /// evicted. Caller holds mutex_.
  void evict_to_fit_locked(const Entry* keep);

  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> models_;
  std::unordered_map<std::string, std::uint64_t> last_used_;
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
  std::int64_t registered_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::atomic<std::int64_t> memo_hits_{0};
  std::atomic<std::int64_t> memo_misses_{0};
};

}  // namespace lid::serve
