#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/json.hpp"

namespace lid::serve {
namespace {

/// A short, printable excerpt of a (possibly garbage) line for error text.
std::string preview(const std::string& line) {
  std::string out;
  for (const char c : line.substr(0, 48)) {
    out.push_back(c >= 0x20 && c < 0x7f ? c : '?');
  }
  if (line.size() > 48) out += "...";
  return out;
}

}  // namespace

RetryingClient::RetryingClient(Connector connect, RetryPolicy policy)
    : connect_(std::move(connect)), policy_(policy), rng_(policy.jitter_seed) {}

void RetryingClient::disconnect() { connection_.reset(); }

void RetryingClient::note_transport_failure() {
  ++consecutive_failures_;
  if (policy_.breaker_threshold > 0 && consecutive_failures_ >= policy_.breaker_threshold) {
    breaker_open_ = true;
    breaker_opened_at_ = util::Timer();
  }
}

void RetryingClient::note_success() {
  consecutive_failures_ = 0;
  breaker_open_ = false;
}

Result<std::string> RetryingClient::attempt(const std::string& line, bool& sent_request,
                                            bool& overloaded) {
  sent_request = false;
  overloaded = false;
  if (!connection_) {
    Result<Client> fresh = connect_();
    if (!fresh) {
      ++stats_.connect_failures;
      // ECONNREFUSED surfaces as strerror text; "refused" is stable in the C
      // locale ("Connection refused"), and a dead Unix socket path reports
      // the same errno — both mean "nothing is listening there".
      if (fresh.error().message.find("refused") != std::string::npos) {
        ++stats_.connect_refused;
      }
      return fresh.error();
    }
    connection_.emplace(std::move(fresh).value());
    ++stats_.reconnects;
    if (policy_.session_warmup) {
      const Status warmed = policy_.session_warmup(*connection_);
      if (!warmed) {
        disconnect();
        ++stats_.connect_failures;
        return warmed.error();
      }
    }
  }
  const Status sent = connection_->send_line(line);
  if (!sent) {
    disconnect();
    ++stats_.mid_request_failures;
    return sent.error();
  }
  sent_request = true;
  Result<std::string> response = connection_->recv_line(policy_.attempt_timeout_ms);
  if (!response) {
    // EOF, recv error or timeout: the connection may be mid-frame; drop it.
    disconnect();
    ++stats_.mid_request_failures;
    return response.error();
  }
  // Validate framing: a response must be a JSON object with a boolean `ok`.
  // Anything else (a torn line, injected garbage) is a transport failure.
  const util::JsonParse parsed = util::json_parse(*response);
  const util::Json* ok =
      parsed && parsed.value.is_object() ? parsed.value.find("ok") : nullptr;
  if (ok == nullptr || !ok->is_bool()) {
    disconnect();
    ++stats_.mid_request_failures;
    return Error{ErrorCode::kParse, "malformed response line: '" + preview(*response) + "'"};
  }
  if (!ok->as_bool()) {
    const util::Json* error = parsed.value.find("error");
    if (error != nullptr && error->is_object()) {
      const util::Json* code = error->find("code");
      overloaded = code != nullptr && code->is_string() && code->as_string() == "overloaded";
    }
  }
  return response;
}

Result<std::string> RetryingClient::call(const std::string& line) {
  ++stats_.calls;
  const bool breaker_enabled = policy_.breaker_threshold > 0;
  if (breaker_enabled && breaker_open_ &&
      breaker_opened_at_.elapsed_ms() < policy_.breaker_cooldown_ms) {
    ++stats_.breaker_fast_fails;
    return Error{ErrorCode::kIo,
                 "circuit breaker open after " + std::to_string(consecutive_failures_) +
                     " consecutive transport failures"};
  }
  // Half-open: the cooldown elapsed, so a single probe attempt is allowed;
  // its outcome closes or re-opens the breaker.
  const bool probing = breaker_enabled && breaker_open_;
  const int max_attempts = probing ? 1 : std::max(1, policy_.max_attempts);

  const auto backoff = [&] {
    // Decorrelated jitter: sleep ~ uniform(base, prev * 3), capped.
    const double base = std::max(0.0, policy_.base_backoff_ms);
    const double prev = previous_backoff_ms_ > 0.0 ? previous_backoff_ms_ : base;
    double sleep = base + rng_.uniform01() * std::max(0.0, prev * 3.0 - base);
    sleep = std::min(sleep, policy_.max_backoff_ms);
    previous_backoff_ms_ = sleep;
    if (sleep > 0.0) {
      ++stats_.backoff_sleeps;
      stats_.backoff_ms_total += sleep;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep));
    }
  };

  Error last{ErrorCode::kIo, "no attempt made"};
  std::optional<std::string> last_overloaded;
  for (int i = 0; i < max_attempts; ++i) {
    if (i > 0) {
      ++stats_.retries;
      backoff();
    }
    ++stats_.attempts;
    bool sent_request = false;
    bool overloaded = false;
    Result<std::string> response = attempt(line, sent_request, overloaded);
    if (response.ok()) {
      note_success();
      previous_backoff_ms_ = 0.0;
      if (overloaded && policy_.retry_overloaded && i + 1 < max_attempts) {
        // Shedding is the server asking us to come back later; the
        // connection itself is healthy, so this does not feed the breaker.
        last_overloaded = std::move(response).value();
        continue;
      }
      return response;
    }
    last = response.error();
    note_transport_failure();
    if (!policy_.assume_idempotent && sent_request) {
      // The server may have executed the request; not safe to repeat.
      return last;
    }
    if (breaker_enabled && breaker_open_) break;  // opened mid-call: stop hammering
  }
  ++stats_.giveups;
  if (last_overloaded) return *last_overloaded;  // a valid, definitive response
  return last;
}

}  // namespace lid::serve
