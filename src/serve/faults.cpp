#include "serve/faults.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/json.hpp"

namespace lid::serve {
namespace {

/// Parses a probability in [0, 1]; returns false on garbage.
bool parse_probability(const std::string& text, double& out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) return false;
  if (value < 0.0 || value > 1.0) return false;
  out = value;
  return true;
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;

  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Error{ErrorCode::kInvalidArgument,
                   "fault plan entry '" + entry + "' is not key=value"};
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return Error{ErrorCode::kInvalidArgument, "fault plan seed '" + value + "' is not an integer"};
      }
      plan.seed = static_cast<std::uint64_t>(seed);
    } else if (key == "stall") {
      // P:MS — probability and stall duration.
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault plan stall '" + value + "' must be P:MS (e.g. 0.1:50)"};
      }
      if (!parse_probability(value.substr(0, colon), plan.stall_p)) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault plan stall probability '" + value.substr(0, colon) +
                         "' must be in [0, 1]"};
      }
      char* end = nullptr;
      const std::string ms = value.substr(colon + 1);
      plan.stall_ms = std::strtod(ms.c_str(), &end);
      if (end == nullptr || *end != '\0' || ms.empty() || plan.stall_ms < 0.0) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault plan stall duration '" + ms + "' must be a non-negative number"};
      }
    } else if (key == "torn" || key == "drop" || key == "garbage") {
      double* target = key == "torn" ? &plan.torn_p : key == "drop" ? &plan.drop_p : &plan.garbage_p;
      if (!parse_probability(value, *target)) {
        return Error{ErrorCode::kInvalidArgument,
                     "fault plan " + key + " probability '" + value + "' must be in [0, 1]"};
      }
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "unknown fault plan key '" + key +
                       "' (expected seed, stall, torn, drop or garbage)"};
    }
  }
  if (plan.torn_p + plan.drop_p + plan.garbage_p > 1.0) {
    return Error{ErrorCode::kInvalidArgument,
                 "torn + drop + garbage probabilities exceed 1"};
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (stall_p > 0.0) out << ",stall=" << stall_p << ":" << stall_ms;
  if (torn_p > 0.0) out << ",torn=" << torn_p;
  if (drop_p > 0.0) out << ",drop=" << drop_p;
  if (garbage_p > 0.0) out << ",garbage=" << garbage_p;
  return out.str();
}

FaultDecision FaultInjector::decide() {
  FaultDecision decision;
  if (!plan_.any()) return decision;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.stall_p > 0.0 && rng_.flip(plan_.stall_p)) {
    decision.stall_ms = plan_.stall_ms;
    ++stalls_;
  }
  // One draw selects among the mutually exclusive transport outcomes.
  const double draw = rng_.uniform01();
  if (draw < plan_.torn_p) {
    decision.torn = true;
    ++torn_;
  } else if (draw < plan_.torn_p + plan_.drop_p) {
    decision.drop = true;
    ++drops_;
  } else if (draw < plan_.torn_p + plan_.drop_p + plan_.garbage_p) {
    decision.garbage = true;
    ++garbage_;
  }
  return decision;
}

std::int64_t FaultInjector::stalls() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

std::int64_t FaultInjector::torn() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return torn_;
}

std::int64_t FaultInjector::drops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return drops_;
}

std::int64_t FaultInjector::garbage() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return garbage_;
}

std::string FaultInjector::stats_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  util::JsonWriter w;
  w.begin_object();
  w.key("plan").value(plan_.to_string());
  w.key("stalls").value(stalls_);
  w.key("torn").value(torn_);
  w.key("drops").value(drops_);
  w.key("garbage").value(garbage_);
  w.end_object();
  return w.str();
}

}  // namespace lid::serve
