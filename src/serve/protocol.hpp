// The lid_serve wire protocol: newline-delimited JSON over a stream socket.
//
// One request per line, one response line per request. A request is a JSON
// object:
//
//   {"id": "7", "verb": "analyze", "netlist": "...", "deadline_ms": 250}
//
// `verb` selects a lid:: facade operation (the tokens match the CLI:
// "ping", "parse", "generate", "analyze", "size-queues", "insert-rs",
// "rate-safety", "lint", "simulate", "sleep", "stats"); the remaining keys
// are verb arguments
// (snake_case). `id` (string or integer, echoed back) correlates responses,
// which a multi-worker server may emit out of order. `deadline_ms` bounds
// the request end to end: a request whose deadline elapsed in the admission
// queue is answered `deadline_exceeded` without running, and one whose
// deadline expires mid-execution is cancelled cooperatively (the solvers
// poll a CancelToken at iteration boundaries). `on_deadline` selects what a
// deadline miss yields: "error" (the default) answers `deadline_exceeded`;
// "degrade" trades quality for an answer — `size-queues` falls back to the
// heuristic solver and tags the response `"degraded": true`, other verbs
// simply run to completion.
//
// Responses:
//
//   {"id":"7","ok":true,"verb":"analyze","result":{...},"server_ms":1.25,"wait_ms":0.02}
//   {"id":"7","ok":false,"verb":"analyze","error":{"code":"overloaded","message":"..."}}
//
// A degraded response carries `"degraded":true` in the envelope (never in
// `result`, which stays a pure function of the request — a degraded
// `size-queues` payload is byte-identical to the same request executed with
// `"solver":"heuristic"` directly).
//
// `result` payloads are deliberately free of floating point and are produced
// by the pure `execute()` below, so a response observed through the server
// is byte-identical to executing the same request directly — the serving
// layer adds no nondeterminism (lid_selfcheck invariant 8). Timings live
// only in the non-deterministic envelope fields (`server_ms`, `wait_ms`).
//
// Protocol v2 (negotiated per connection with the `hello` verb; see
// docs/api-overview.md for the full walkthrough):
//
//   * `hello` — version/capability negotiation. A connection that never
//     sends it stays on v1 and behaves exactly as above, byte for byte.
//     After a successful hello, every response envelope carries
//     `"protocol":2`.
//   * registry verbs — `register-model` / `evict-model` / `list-models`
//     manage the server's content-addressed model registry (registry.hpp),
//     and `analyze` / `size-queues` / `lint` / `rate-safety` / `simulate`
//     accept `"model": "<fingerprint>"` in place of inline `netlist` text. A
//     registered-model payload is byte-identical to sending the model's
//     canonical netlist inline.
//   * a binary transport lane — length-prefixed frames (frame.hpp) carrying
//     the same JSON bytes as the NDJSON lane. Responses always use the
//     transport their request arrived in.
#pragma once

#include <cstdint>
#include <string>

#include "lid_api.hpp"
#include "util/cancel.hpp"
#include "util/json.hpp"

namespace lid::serve {

/// Machine-readable `error.code` values.
namespace codes {
inline constexpr const char* kParse = "parse_error";           ///< request line is not valid JSON
inline constexpr const char* kInvalidArgument = "invalid_argument";
inline constexpr const char* kUnknownVerb = "unknown_verb";
inline constexpr const char* kTooLarge = "too_large";          ///< request/netlist over size limit
inline constexpr const char* kOverloaded = "overloaded";       ///< admission queue full, load shed
inline constexpr const char* kDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kShuttingDown = "shutting_down";  ///< received during drain
inline constexpr const char* kIo = "io";
inline constexpr const char* kTimeout = "timeout";
inline constexpr const char* kInternal = "internal";
inline constexpr const char* kLint = "lint";  ///< pre-flight lint rejected the model
inline constexpr const char* kUnknownModel = "unknown_model";  ///< fingerprint not resident
inline constexpr const char* kRegistryFull = "registry_full";  ///< model refused by the budget
inline constexpr const char* kUnsupportedVersion = "unsupported_version";
/// Cluster router: every candidate worker failed (after failover + retries).
inline constexpr const char* kUpstreamUnavailable = "upstream_unavailable";
}  // namespace codes

/// Protocol versions this build speaks. v1 is the implicit NDJSON protocol
/// every connection starts in; v2 (negotiated via `hello`) adds the model
/// registry, the binary frame lane, and the `protocol` envelope field.
inline constexpr int kProtocolVersionMin = 1;
inline constexpr int kProtocolVersion = 2;

/// `code` mapped onto the wire string (kParse -> "parse_error", ...).
const char* wire_code(ErrorCode code);

/// Per-request deadline-miss policy.
enum class OnDeadline {
  kError,    ///< answer `deadline_exceeded` (default)
  kDegrade,  ///< prefer a lower-quality answer over an error
};

/// One parsed request.
struct Request {
  bool has_id = false;
  std::string id;            ///< echoed verbatim; "" when has_id is false
  std::string verb;
  double deadline_ms = 0.0;  ///< <= 0: no deadline
  OnDeadline on_deadline = OnDeadline::kError;
  util::Json args;           ///< the whole request object
};

/// Server-side caps applied to every request, independent of what the
/// client asks for. These keep a single request from monopolizing a worker
/// (deterministic node budgets) or exhausting memory (size limits).
struct ExecLimits {
  /// Hard cap on the exact-QS node budget; requests asking for more (or for
  /// "unlimited" via 0) are clamped here, keeping responses deterministic.
  std::int64_t exact_max_nodes = 200'000;
  /// Cap on cycle enumeration during queue sizing.
  std::size_t max_cycles = 500'000;
  /// Largest accepted embedded netlist text, in bytes.
  std::size_t max_netlist_bytes = 1 << 20;
  /// Largest accepted `generate` core count.
  std::int64_t max_gen_cores = 2'000;
  /// Cap on the diagnostic `sleep` verb.
  std::int64_t max_sleep_ms = 10'000;
  /// Relay stations `insert-rs` may be asked to add.
  std::int64_t max_rs_budget = 64;
  /// Cap on the `simulate` cycle horizon (and warmup), keeping one DES
  /// request from monopolizing a worker.
  std::int64_t max_sim_horizon = 1'000'000;
};

class Registry;

/// Execution-time context the server threads into `execute`: the request's
/// cancel token (armed from the remaining deadline budget), whether the
/// deadline had already expired when a worker dequeued the request, and the
/// server's model registry (nullptr disables `model` resolution and the
/// registry verbs). The default context never cancels — direct
/// `execute(request, limits)` calls stay pure and uncancellable.
struct ExecContext {
  util::CancelToken cancel;
  bool deadline_expired = false;
  Registry* registry = nullptr;
};

/// Outcome of executing one request: either a compact JSON `result` payload
/// or a wire error code + message.
struct Outcome {
  bool ok = false;
  std::string payload;        ///< compact JSON object ("{...}") when ok
  std::string error_code;     ///< codes::* when !ok
  std::string error_message;
  /// True when the deadline-miss policy downgraded the answer (heuristic
  /// instead of exact). Emitted in the response envelope, never the payload.
  bool degraded = false;
  /// Lazy-solver counters from a `size-queues` execution (zero for every
  /// other verb/solver). The server folds them into its metrics so the
  /// `stats` verb can report aggregate lazy-solver behavior.
  std::int64_t lazy_iterations = 0;
  std::int64_t lazy_cycles_generated = 0;
  std::int64_t lazy_warm_restarts = 0;
  bool lazy_fell_back = false;

  static Outcome success(std::string payload_json);
  static Outcome failure(std::string code, std::string message);
};

/// Parses one request line. Error codes: kParse for malformed JSON,
/// kInvalidArgument for a structurally wrong request (non-object, bad id,
/// missing verb, negative deadline).
Result<Request> parse_request(const std::string& line);

/// Executes `request` against the lid:: facade. Pure and deterministic for
/// every verb except "sleep" (which blocks the calling thread) — and even
/// sleep's payload is deterministic. "stats" is not handled here: it needs
/// server state and is answered by the Server directly.
Outcome execute(const Request& request, const ExecLimits& limits = {});

/// Like the two-argument overload, but cancellable: `context.cancel` is
/// polled by the solvers, and a mid-flight expiry yields `deadline_exceeded`
/// (policy "error") or a degraded answer (policy "degrade"). Successful
/// payloads remain byte-identical to the pure overload's — cancellation
/// never emits a partial result.
Outcome execute(const Request& request, const ExecLimits& limits, const ExecContext& context);

/// Formats the response line (without trailing newline) for an executed
/// request. `server_ms` / `wait_ms` land in the envelope, not the payload.
/// `protocol` >= 2 adds the negotiated `"protocol"` envelope field; the
/// default keeps v1 envelopes byte-identical to pre-v2 builds.
std::string response_line(const Request& request, const Outcome& outcome, double server_ms,
                          double wait_ms, int protocol = 1);

/// Formats an error response for a request that never executed (parse
/// failure, shed, expired deadline). `id_json` is the already-serialized id
/// ("\"7\"", "7", or "null"); use `request_id_json` to build it.
std::string error_line(const std::string& id_json, const std::string& verb,
                       const std::string& code, const std::string& message, int protocol = 1);

/// The id of `request` as a JSON fragment ("null" when absent).
std::string request_id_json(const Request& request);

/// Client-side helper: parses a response line and returns the canonical
/// compact re-serialization of its `result` member. Errors when the line is
/// not a response object, `ok` is false, or `result` is missing. Because
/// payloads avoid floating point, the returned bytes equal the producing
/// Outcome::payload exactly.
Result<std::string> extract_result(const std::string& response);

}  // namespace lid::serve
