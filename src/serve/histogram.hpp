// A fixed-bucket latency histogram for the server's `stats` verb.
//
// Buckets are log-spaced (powers of two of 0.001 ms up to ~17 minutes), so
// recording is O(1) and lock-held time is a few instructions. Quantiles are
// interpolated within the winning bucket — approximate, but plenty for a
// load-shedding dashboard; the load generator keeps exact client-side
// samples when precision matters.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

namespace lid::serve {

class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 30;
  /// Upper edge of bucket `i` in milliseconds: 0.001 * 2^i.
  static double bucket_edge_ms(std::size_t i);

  void record(double ms);

  [[nodiscard]] std::int64_t count() const;
  /// Approximate quantile (q in [0, 1]); 0 when empty.
  [[nodiscard]] double quantile_ms(double q) const;

  /// {"count": n, "p50_ms": ..., "p95_ms": ..., "p99_ms": ..., "max_ms": ...}
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double max_ms_ = 0.0;
};

}  // namespace lid::serve
