// Cluster mode: a sharded multi-process serving topology behind one front
// door. The in-process robustness layer (bounded admission, retries,
// breakers, fault plans) promoted to a *process* topology — the paper's
// latency-insensitive discipline applied across processes: workers are
// treated as channels of arbitrary (even infinite) latency, and the router
// stays correct under any of it via backpressure, failover and replay.
//
//   clients ──► Cluster router ──► N lid_serve worker processes
//                    │                 (one model registry each)
//                    └── health prober (stats verb, generation tracking)
//
// Topology and routing:
//
//   * Workers are either SPAWNED (the router fork/execs `lid_serve` on a
//     private Unix socket and owns the child) or ADOPTED (an endpoint the
//     router attaches to — used by tests, selfcheck and external process
//     supervisors).
//   * Requests route by consistent hashing (HashRing, virtual nodes) on the
//     model fingerprint — registered-model requests hash their fingerprint,
//     inline-netlist requests the netlist bytes — so repeated work on one
//     model lands on the worker whose registry/memo already holds it (cache
//     affinity). Verbs with no model (ping, generate, sleep) round-robin.
//   * Workers are unreliable by assumption. Each is probed every
//     `probe_interval_ms` via the existing `stats` verb; `eject_after`
//     consecutive probe failures eject it from routing until a probe
//     succeeds again. The probe also reads the worker's pid and
//     start_unix_ms: a changed identity is a *silent restart* — the worker
//     bumps its generation, which invalidates everything the router believed
//     about it (registered models, breaker state).
//   * Forwarding failures (connect refused, torn/garbage response, EOF,
//     timeout) fail over to the next distinct ring node; every protocol verb
//     is idempotent, so replay is always safe. Per-worker circuit breakers
//     stop the router from burning timeouts on a dead worker between probes.
//   * The router remembers the canonical text of every model registered
//     through it. On failover (or after a worker restart) a model-addressed
//     request re-registers the model on the target worker first — the
//     cluster-level `session_warmup` — so clients never see `unknown_model`
//     for a model they registered.
//
// Admin verbs (handled by the router itself, see docs/cluster.md):
//
//   * `cluster-stats`  — per-worker health/routing/breaker/generation view.
//   * `drain-worker`   — stop routing to a worker, wait for its in-flight
//                        requests to finish. {"worker": i}
//   * `rejoin-worker`  — undo a drain (the worker re-enters the ring).
//   * `restart-worker` — drain → SIGTERM → respawn → probe → rejoin, for
//                        spawned workers. Zero admitted requests are lost:
//                        new work routes around the worker while its
//                        in-flight requests complete before the signal.
//   * `stats`          — aggregated across workers (counter sums, merged
//                        registry totals) in the single-server shape, so
//                        existing tooling (lid_loadgen's hit-rate probe)
//                        works unchanged against a cluster.
//
// Everything else is transparent: request lines are forwarded verbatim and
// worker response lines returned verbatim, so payloads through the cluster
// are byte-identical to a single server and to direct execution
// (lid_selfcheck invariant 14).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lid_api.hpp"
#include "serve/client.hpp"
#include "util/timer.hpp"

namespace lid::serve {

/// Consistent hashing of string keys onto worker indices. Each worker owns
/// `replicas` pseudo-random points on a 64-bit ring; a key routes to the
/// first point clockwise from its hash. Losing one worker of N therefore
/// moves only that worker's arc — about 1/N of keys, bounded well under 2/N
/// with enough replicas — while every other key keeps its worker (cache
/// affinity survives membership churn).
class HashRing {
 public:
  explicit HashRing(int replicas = 64) : replicas_(replicas < 1 ? 1 : replicas) {}

  /// FNV-1a 64 over `key` (the same family the model registry fingerprints
  /// use, so routing is deterministic across processes and runs).
  static std::uint64_t hash(const std::string& key);

  void add(int worker);
  void remove(int worker);
  [[nodiscard]] bool contains(int worker) const { return workers_.count(worker) > 0; }
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// The primary worker for `key`, or -1 when the ring is empty.
  [[nodiscard]] int primary(const std::string& key) const;

  /// Up to `n` distinct workers for `key` in failover order: the primary
  /// first, then successive distinct ring successors.
  [[nodiscard]] std::vector<int> route(const std::string& key, std::size_t n) const;

 private:
  int replicas_;
  std::map<std::uint64_t, int> ring_;  ///< point -> worker
  std::set<int> workers_;
};

/// One worker endpoint of the cluster.
struct WorkerSpec {
  /// The worker's Unix listening socket.
  std::string unix_socket;
  /// True: the router fork/execs `lid_serve` on that socket and owns the
  /// child (restart-worker works). False: attach to an externally managed
  /// server (restart-worker answers `invalid_argument`).
  bool spawn = false;
  /// `--fault-plan` spec passed to a spawned worker (chaos testing; see
  /// faults.hpp). Empty = no injection.
  std::string fault_plan;
  /// `--pid-file` path for a spawned worker; empty = none.
  std::string pid_file;
};

struct ClusterOptions {
  /// Front-door Unix socket. Takes precedence over TCP.
  std::string unix_socket;
  /// Front-door TCP port (0 = kernel-assigned); -1 disables TCP.
  int tcp_port = -1;
  std::string host = "127.0.0.1";

  std::vector<WorkerSpec> workers;

  /// Path of the lid_serve binary (spawned workers). Required when any
  /// spec.spawn is set.
  std::string serve_binary;
  /// --workers / --queue-capacity forwarded to spawned lid_serve processes.
  int serve_threads = 1;
  std::size_t serve_queue_capacity = 64;

  /// Health probing: period, per-probe budget, and the consecutive-failure
  /// count that ejects a worker from routing.
  double probe_interval_ms = 100.0;
  double probe_timeout_ms = 1'000.0;
  int eject_after = 3;

  /// Virtual nodes per worker on the hash ring.
  int ring_replicas = 64;

  /// Per-hop forwarding budgets. `connect_timeout_ms` bounds backend
  /// connect() (a hung worker must not stall the router on the OS default);
  /// `forward_timeout_ms` bounds one request round trip on a worker.
  double connect_timeout_ms = 1'000.0;
  double forward_timeout_ms = 30'000.0;

  /// Per-worker circuit breaker on the forwarding path: consecutive
  /// transport failures that open it, and how long it rejects before a
  /// half-open probe. 0 disables.
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 500.0;

  /// Longest accepted request line on the front door.
  std::size_t max_request_bytes = 1 << 20;

  /// Structured log lines (worker lifecycle, ejections, failovers);
  /// nullptr = silent.
  std::ostream* log = nullptr;
};

/// The cluster router: front-door socket, worker lifecycle, health, routing.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns/adopts the workers, waits for each to answer a probe, binds the
  /// front door and starts the accept + prober threads.
  Status start();

  /// Requests a graceful stop. Async-signal-safe (one write()).
  void request_stop();

  /// Blocks until a requested stop finishes: front door closed, in-flight
  /// requests answered, spawned workers SIGTERMed and reaped.
  void wait();

  /// request_stop() + wait().
  void stop();

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] int port() const { return resolved_port_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// The `cluster-stats` payload: per-worker health/routing state plus
  /// router totals, as compact JSON.
  [[nodiscard]] std::string cluster_stats_json() const;

  // Admin operations (the socket verbs call these; tests call them
  // directly). All are safe to invoke concurrently with traffic.

  /// Takes the worker out of routing and waits up to `timeout_ms` for its
  /// in-flight requests to finish. Idempotent.
  Status drain_worker(std::size_t index, double timeout_ms = 10'000.0);

  /// Puts a drained worker back into routing (health permitting).
  Status rejoin_worker(std::size_t index);

  /// drain → SIGTERM → respawn → probe-until-healthy → rejoin. Spawned
  /// workers only. No admitted request is lost: the drain step completes
  /// everything in flight before the signal.
  Status restart_worker(std::size_t index, double timeout_ms = 30'000.0);

 private:
  struct Worker;
  struct Connection;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> connection);
  void handle_message(Connection& connection, std::string text, bool binary);
  void handle_hello(Connection& connection, const std::string& text, bool binary);
  void handle_admin(Connection& connection, const std::string& verb, const std::string& text,
                    bool binary);
  void handle_aggregate_stats(Connection& connection, const std::string& text, bool binary);

  /// Forwards one request line, with affinity routing, failover and
  /// on-demand model re-registration. Returns the response line to send to
  /// the client (always well-formed: a worker response or a structured
  /// router error).
  std::string forward(Connection& connection, const std::string& line);

  /// One attempt on one worker over the connection's cached backend.
  /// A failure drops the backend and reports false (the caller fails over).
  bool forward_once(Connection& connection, Worker& worker, const std::string& line,
                    std::string& response_out);

  /// Ensures `fingerprint` is registered on `worker` (current generation),
  /// using the router's remembered canonical text. True when the worker is
  /// believed to hold the model afterwards.
  bool ensure_model(Connection& connection, Worker& worker, const std::string& fingerprint);

  /// The routing key of a parsed-enough request: model fingerprint, netlist
  /// hash, or "" (no affinity -> round robin).
  static std::string route_key(const std::string& line, std::string* model_fingerprint,
                               std::string* netlist_text, std::string* verb);

  /// Candidate workers for a key: ring failover order, usable (healthy, not
  /// draining, breaker closed/half-open) first, then still-standing
  /// non-draining workers as a last resort.
  std::vector<Worker*> candidates(const std::string& key);

  bool usable(const Worker& worker) const;
  void note_forward_failure(Worker& worker);
  void note_forward_success(Worker& worker);

  Status spawn_worker(Worker& worker);
  Status wait_for_worker(Worker& worker, double timeout_ms);
  /// One synchronous probe: connect + `stats`, updating health, identity
  /// (pid/start time -> silent-restart detection) and breaker state.
  bool probe_worker(Worker& worker);
  void prober_loop();
  void reap_worker(Worker& worker);
  void log_line(const std::string& event, const Worker* worker, const std::string& detail);

  ClusterOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::mutex ring_mutex_;
  HashRing ring_;

  /// fingerprint -> canonical netlist text of every model registered through
  /// the router (the failover re-registration source).
  mutable std::mutex models_mutex_;
  std::unordered_map<std::string, std::string> model_texts_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::string endpoint_;
  int resolved_port_ = -1;
  bool unlink_on_close_ = false;

  std::thread accept_thread_;
  std::thread prober_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> next_connection_id_{0};
  std::atomic<std::uint64_t> round_robin_{0};

  // Router totals (cluster-stats; the zero-loss ledger).
  std::atomic<std::int64_t> admitted_{0};      ///< requests accepted for forwarding
  std::atomic<std::int64_t> completed_{0};     ///< answered with a worker response
  std::atomic<std::int64_t> failed_{0};        ///< answered `upstream_unavailable`
  std::atomic<std::int64_t> failovers_{0};     ///< hops past the primary
  std::atomic<std::int64_t> reregistrations_{0};
  std::atomic<std::int64_t> ejections_{0};
  std::atomic<std::int64_t> silent_restarts_{0};

  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace lid::serve
