#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/timer.hpp"

namespace lid::serve {
namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kIo, what + ": " + std::strerror(errno)};
}

}  // namespace

Result<Client> Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kInvalidArgument, "unix socket path too long: " + path};
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Error error = errno_error("connect('" + path + "')");
    ::close(fd);
    return error;
  }
  return Client(fd);
}

Result<Client> Client::connect_tcp(const std::string& host, int port) {
  if (port <= 0 || port > 65535) {
    return Error{ErrorCode::kInvalidArgument, "bad port " + std::to_string(port)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Error{ErrorCode::kInvalidArgument, "bad host address '" + host + "'"};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Error error = errno_error("connect(" + host + ":" + std::to_string(port) + ")");
    ::close(fd);
    return error;
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::send_line(const std::string& line) {
  if (fd_ < 0) return Error{ErrorCode::kIo, "client is closed"};
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Unit{};
}

Result<std::string> Client::recv_line(double timeout_ms) {
  if (fd_ < 0) return Error{ErrorCode::kIo, "client is closed"};
  util::Timer waited;
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (timeout_ms > 0.0) {
      const double remaining = timeout_ms - waited.elapsed_ms();
      if (remaining <= 0.0) {
        return Error{ErrorCode::kTimeout,
                     "no response within " + std::to_string(timeout_ms) + " ms"};
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining)));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return errno_error("poll");
      }
      if (ready == 0) continue;  // re-check remaining; expires next pass
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Error{ErrorCode::kIo, "server closed the connection"};
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> Client::call(const std::string& line) {
  const Status sent = send_line(line);
  if (!sent) return sent.error();
  return recv_line();
}

}  // namespace lid::serve
