#include "serve/client.hpp"

#include <utility>

namespace lid::serve {
namespace {

/// The legacy default: no handshake, NDJSON only — v1 on the wire.
SessionOptions legacy_options() {
  SessionOptions options;
  options.protocol = 1;
  options.hello = false;
  options.binary = false;
  return options;
}

}  // namespace

Client::Client(Session session) : session_(std::make_unique<Session>(std::move(session))) {}

Result<Client> Client::connect_unix(const std::string& path) {
  return connect_unix(path, legacy_options());
}

Result<Client> Client::connect_tcp(const std::string& host, int port) {
  return connect_tcp(host, port, legacy_options());
}

Result<Client> Client::connect_unix(const std::string& path, const SessionOptions& options) {
  Result<Session> session = Session::connect_unix(path, options);
  if (!session) return session.error();
  return Client(std::move(session).value());
}

Result<Client> Client::connect_tcp(const std::string& host, int port,
                                   const SessionOptions& options) {
  Result<Session> session = Session::connect_tcp(host, port, options);
  if (!session) return session.error();
  return Client(std::move(session).value());
}

Client::Client(Client&& other) noexcept = default;
Client& Client::operator=(Client&& other) noexcept = default;
Client::~Client() = default;

void Client::close() {
  if (session_) session_->close();
}

Status Client::send_line(const std::string& line) {
  if (!session_) return Error{ErrorCode::kIo, "client is closed"};
  return session_->send_message(line);
}

Result<std::string> Client::recv_line(double timeout_ms) {
  if (!session_) return Error{ErrorCode::kIo, "client is closed"};
  return session_->recv_message(timeout_ms);
}

Result<std::string> Client::call(const std::string& line) {
  const Status sent = send_line(line);
  if (!sent) return sent.error();
  return recv_line();
}

}  // namespace lid::serve
