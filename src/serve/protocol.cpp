#include "serve/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "des/des.hpp"
#include "engine/cached_analysis.hpp"
#include "lint/render.hpp"
#include "serve/registry.hpp"
#include "util/rational.hpp"

namespace lid::serve {
namespace {

/// Pulls typed, range-checked arguments out of a request object. The first
/// violation is latched; callers check `error()` once after reading
/// everything.
class ArgReader {
 public:
  explicit ArgReader(const util::Json& args) : args_(args) {}

  [[nodiscard]] bool failed() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::string& error_code() const { return code_; }

  std::int64_t get_int(const char* key, std::int64_t fallback, std::int64_t min,
                       std::int64_t max) {
    const util::Json* v = args_.find(key);
    if (v == nullptr || v->is_null()) return fallback;
    if (!v->is_number()) {
      fail(codes::kInvalidArgument, std::string("'") + key + "' must be a number");
      return fallback;
    }
    const std::int64_t value = v->as_int();
    if (value < min || value > max) {
      fail(codes::kInvalidArgument, std::string("'") + key + "' must be in [" +
                                        std::to_string(min) + ", " + std::to_string(max) +
                                        "], got " + std::to_string(value));
      return fallback;
    }
    return value;
  }

  bool get_bool(const char* key, bool fallback) {
    const util::Json* v = args_.find(key);
    if (v == nullptr || v->is_null()) return fallback;
    if (!v->is_bool()) {
      fail(codes::kInvalidArgument, std::string("'") + key + "' must be a boolean");
      return fallback;
    }
    return v->as_bool();
  }

  std::string get_string(const char* key, const std::string& fallback) {
    const util::Json* v = args_.find(key);
    if (v == nullptr || v->is_null()) return fallback;
    if (!v->is_string()) {
      fail(codes::kInvalidArgument, std::string("'") + key + "' must be a string");
      return fallback;
    }
    return v->as_string();
  }

  [[nodiscard]] bool has(const char* key) const { return args_.find(key) != nullptr; }

  /// The optional "model" fingerprint; empty when absent.
  std::string get_model() {
    const util::Json* v = args_.find("model");
    if (v == nullptr || v->is_null()) return {};
    if (!v->is_string() || v->as_string().empty()) {
      fail(codes::kInvalidArgument, "'model' must be a non-empty fingerprint string");
      return {};
    }
    return v->as_string();
  }

  /// The required embedded netlist text, with the size limit applied.
  std::string get_netlist(const ExecLimits& limits) {
    const util::Json* v = args_.find("netlist");
    if (v == nullptr || !v->is_string()) {
      fail(codes::kInvalidArgument, "'netlist' (string) is required");
      return {};
    }
    if (v->as_string().size() > limits.max_netlist_bytes) {
      fail(codes::kTooLarge, "netlist of " + std::to_string(v->as_string().size()) +
                                 " bytes exceeds the limit of " +
                                 std::to_string(limits.max_netlist_bytes));
      return {};
    }
    return v->as_string();
  }

  void fail(const char* code, std::string message) {
    if (error_.empty()) {
      code_ = code;
      error_ = std::move(message);
    }
  }

 private:
  const util::Json& args_;
  std::string code_;
  std::string error_;
};

Outcome arg_failure(const ArgReader& reader) {
  return Outcome::failure(reader.error_code(), reader.error());
}

Outcome from_error(const Error& error) {
  return Outcome::failure(wire_code(error.code), error.message);
}

/// How a netlist verb names its target: inline `netlist` text (v1) or a
/// registered `model` fingerprint (v2). Reading only validates argument
/// shape — parsing/registry lookup happens in `resolve_instance` after the
/// caller has checked every argument, preserving v1's error precedence.
struct ModelRef {
  std::string fingerprint;  ///< non-empty selects the registry path
  std::string netlist;
};

ModelRef read_model_ref(ArgReader& reader, const ExecLimits& limits) {
  ModelRef ref;
  ref.fingerprint = reader.get_model();
  if (!ref.fingerprint.empty()) {
    if (reader.has("netlist")) {
      reader.fail(codes::kInvalidArgument, "give 'netlist' or 'model', not both");
    }
    return ref;
  }
  ref.netlist = reader.get_netlist(limits);
  return ref;
}

/// The target instance plus, for registry-addressed requests, the resident
/// entry whose pooled cache/memo serve it. `entry` stays null on the inline
/// path.
struct ResolvedModel {
  Instance instance;
  std::shared_ptr<Registry::Entry> entry;
};

std::optional<Outcome> resolve_instance(const ModelRef& ref, const ExecContext& context,
                                        ResolvedModel& out) {
  if (!ref.fingerprint.empty()) {
    if (context.registry == nullptr) {
      return Outcome::failure(codes::kUnknownModel,
                              "model '" + ref.fingerprint +
                                  "' cannot be resolved: this server has no model registry");
    }
    out.entry = context.registry->acquire(ref.fingerprint);
    if (out.entry == nullptr) {
      return Outcome::failure(codes::kUnknownModel,
                              "model '" + ref.fingerprint +
                                  "' is not registered (it may have been evicted; "
                                  "register-model again)");
    }
    out.instance = out.entry->instance;
    return std::nullopt;
  }
  const Result<Instance> parsed = parse_netlist(ref.netlist);
  if (!parsed) return from_error(parsed.error());
  out.instance = *parsed;
  return std::nullopt;
}

/// The payload-memo key for a registered-model request: the verb plus every
/// argument that can influence the payload, in request order. Envelope-only
/// keys (id, deadline) are excluded so retries and different deadlines hit
/// the same memo slot; `model` is constant within one entry's memo.
std::string memo_key(const Request& request) {
  std::string key = request.verb;
  for (const auto& [name, value] : request.args.members()) {
    if (name == "id" || name == "verb" || name == "model" || name == "deadline_ms" ||
        name == "on_deadline") {
      continue;
    }
    key += '\x1f';
    key += name;
    key += '=';
    key += value.dump();
  }
  return key;
}

/// Runs `compute` for a resolved model. Registry-addressed requests take the
/// entry lock (serializing work on one model, so the single-threaded
/// AnalysisCache is safe) and consult the payload memo first; only ok,
/// non-degraded outcomes are memoized — a degraded payload reflects deadline
/// policy, not the request alone. Inline requests just compute.
template <typename Fn>
Outcome memoized(const ResolvedModel& model, const ExecContext& context, const Request& request,
                 Fn&& compute) {
  if (model.entry == nullptr) return compute();
  const std::string key = memo_key(request);
  const std::lock_guard<std::mutex> lock(model.entry->mutex);
  if (const auto it = model.entry->memo.find(key); it != model.entry->memo.end()) {
    context.registry->note_memo(true);
    return Outcome::success(it->second);
  }
  context.registry->note_memo(false);
  Outcome outcome = compute();
  if (outcome.ok && !outcome.degraded) {
    context.registry->memoize(*model.entry, key, outcome.payload);
  }
  return outcome;
}

void instance_summary(util::JsonWriter& w, const Instance& instance) {
  w.key("cores").value(instance.num_cores());
  w.key("channels").value(instance.num_channels());
  w.key("relay_stations").value(instance.total_relay_stations());
}

Outcome do_ping() {
  util::JsonWriter w;
  w.begin_object().key("pong").value(true).end_object();
  return Outcome::success(w.str());
}

Outcome do_sleep(ArgReader& reader, const ExecLimits& limits, const ExecContext& context) {
  const std::int64_t ms = reader.get_int("ms", 0, 0, limits.max_sleep_ms);
  if (reader.failed()) return arg_failure(reader);
  if (context.cancel.can_cancel()) {
    // Sleep in short slices polling the token, so a deadline expiring
    // mid-sleep frees the worker within ~10 ms instead of `ms`.
    std::int64_t slept = 0;
    while (slept < ms) {
      if (context.cancel.cancelled()) {
        return Outcome::failure(codes::kDeadlineExceeded,
                                "deadline expired after " + std::to_string(slept) + " of " +
                                    std::to_string(ms) + " ms of sleep");
      }
      const std::int64_t slice = std::min<std::int64_t>(10, ms - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
    }
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  util::JsonWriter w;
  w.begin_object().key("slept_ms").value(ms).end_object();
  return Outcome::success(w.str());
}

Outcome do_parse(ArgReader& reader, const ExecLimits& limits) {
  const std::string text = reader.get_netlist(limits);
  if (reader.failed()) return arg_failure(reader);
  const Result<Instance> parsed = parse_netlist(text);
  if (!parsed) return from_error(parsed.error());
  const Result<std::string> canonical = netlist_text(*parsed);
  if (!canonical) return from_error(canonical.error());
  util::JsonWriter w;
  w.begin_object();
  instance_summary(w, *parsed);
  w.key("netlist").value(*canonical);
  w.end_object();
  return Outcome::success(w.str());
}

Outcome do_generate(ArgReader& reader, const ExecLimits& limits) {
  GenerateOptions options;
  options.cores = static_cast<int>(reader.get_int("v", options.cores, 1, limits.max_gen_cores));
  options.sccs = static_cast<int>(reader.get_int("s", options.sccs, 1, limits.max_gen_cores));
  options.extra_cycles =
      static_cast<int>(reader.get_int("c", options.extra_cycles, 0, limits.max_gen_cores));
  options.relay_stations =
      static_cast<int>(reader.get_int("rs", options.relay_stations, 0, limits.max_gen_cores));
  options.queue_capacity = static_cast<int>(reader.get_int("q", options.queue_capacity, 1, 1024));
  options.seed = static_cast<std::uint64_t>(
      reader.get_int("seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
  options.reconvergent = reader.get_bool("reconvergent", options.reconvergent);
  const std::string policy = reader.get_string("policy", "scc");
  if (policy == "any") {
    options.rs_anywhere = true;
  } else if (policy != "scc") {
    reader.fail(codes::kInvalidArgument, "'policy' must be \"scc\" or \"any\"");
  }
  if (reader.failed()) return arg_failure(reader);

  const Result<Instance> generated = generate(options);
  if (!generated) return from_error(generated.error());
  const Result<std::string> text = netlist_text(*generated);
  if (!text) return from_error(text.error());
  util::JsonWriter w;
  w.begin_object();
  instance_summary(w, *generated);
  w.key("netlist").value(*text);
  w.end_object();
  return Outcome::success(w.str());
}

/// The `analyze` result payload: a pure function of the Analysis + options,
/// shared by the inline and the cache-pooled path.
Outcome analyze_payload(const Analysis& analysis, const AnalyzeOptions& options) {
  util::JsonWriter w;
  w.begin_object();
  w.key("cores").value(analysis.cores);
  w.key("channels").value(analysis.channels);
  w.key("relay_stations").value(analysis.relay_stations);
  w.key("topology").value(analysis.topology);
  w.key("theta_ideal").value(analysis.theta_ideal.to_string());
  w.key("theta_practical").value(analysis.theta_practical.to_string());
  w.key("degraded").value(analysis.degraded);
  if (options.critical_cycle) {
    w.key("critical_cycle").begin_array();
    for (const std::string& hop : analysis.critical_cycle) w.value(hop);
    w.end_array();
  }
  if (options.rate_safety) {
    w.key("rate_hazards").value(analysis.rate_hazards);
    w.key("rate_safe").value(analysis.rate_safe);
  }
  // Float-free and deterministic by construction (write_certificate), so
  // certified payloads stay memo- and registry-safe.
  if (analysis.certificate) {
    w.key("certificate");
    verify::write_certificate(w, *analysis.certificate);
  }
  w.end_object();
  return Outcome::success(w.str());
}

Outcome do_analyze(ArgReader& reader, const ExecLimits& limits, const ExecContext& context,
                   const Request& request) {
  const ModelRef ref = read_model_ref(reader, limits);
  AnalyzeOptions options;
  options.critical_cycle = reader.get_bool("critical_cycle", true);
  options.rate_safety = reader.get_bool("rate_safety", true);
  options.certify = reader.get_bool("certify", false);
  if (reader.failed()) return arg_failure(reader);
  ResolvedModel model;
  if (auto failed = resolve_instance(ref, context, model)) return *failed;
  return memoized(model, context, request, [&]() -> Outcome {
    const Result<Analysis> analysis =
        model.entry != nullptr
            ? engine::analyze_cached(*model.entry->cache, model.instance, options)
            : analyze(model.instance, options);
    if (!analysis) return from_error(analysis.error());
    return analyze_payload(*analysis, options);
  });
}

/// The `size-queues` result payload: a pure function of the Sizing (no
/// floats, no timings), shared by the normal and the degraded path so a
/// degraded response is byte-identical to a direct heuristic execution.
Outcome sizing_outcome(const Sizing& sizing) {
  const Result<std::string> sized_text = netlist_text(sizing.sized);
  if (!sized_text) return from_error(sized_text.error());

  util::JsonWriter w;
  w.begin_object();
  w.key("theta_ideal").value(sizing.theta_ideal.to_string());
  w.key("theta_practical").value(sizing.theta_practical.to_string());
  w.key("degraded").value(sizing.degraded);
  if (sizing.heuristic_total >= 0) w.key("heuristic_total").value(sizing.heuristic_total);
  if (sizing.exact_total >= 0) {
    w.key("exact_total").value(sizing.exact_total);
    w.key("exact_proved").value(sizing.exact_proved);
  }
  w.key("achieved").value(sizing.achieved.to_string());
  w.key("cycles_enumerated").value(sizing.cycles_enumerated);
  w.key("truncated").value(sizing.truncated);
  // Lazy-only keys, so heuristic/exact/both payloads (and the degraded
  // fallback, which reruns as heuristic) stay byte-stable.
  if (sizing.solver_lazy) {
    w.key("lazy_iterations").value(sizing.lazy_iterations);
    w.key("cycles_generated").value(sizing.cycles_generated);
    w.key("lazy_fell_back").value(sizing.lazy_fell_back);
  }
  w.key("changes").begin_array();
  for (const QueueChange& change : sizing.changes) {
    w.begin_object();
    w.key("src").value(change.src);
    w.key("dst").value(change.dst);
    w.key("before").value(change.before);
    w.key("after").value(change.after);
    w.end_object();
  }
  w.end_array();
  w.key("netlist").value(*sized_text);
  if (sizing.certificate) {
    w.key("certificate");
    verify::write_certificate(w, *sizing.certificate);
  }
  w.end_object();
  Outcome outcome = Outcome::success(w.str());
  if (sizing.solver_lazy) {
    outcome.lazy_iterations = sizing.lazy_iterations;
    outcome.lazy_cycles_generated = sizing.cycles_generated;
    outcome.lazy_warm_restarts = sizing.howard_warm_restarts;
    outcome.lazy_fell_back = sizing.lazy_fell_back;
  }
  return outcome;
}

Outcome do_size_queues(ArgReader& reader, const ExecLimits& limits, const ExecContext& context,
                       const Request& request) {
  const OnDeadline policy = request.on_deadline;
  const ModelRef ref = read_model_ref(reader, limits);
  SizeQueuesOptions options;
  // Default "lazy": constraint generation, falling back to full enumeration
  // deterministically when it cannot make progress. "full" is an alias for
  // the eager heuristic+exact pipeline ("both").
  const std::string solver = reader.get_string("solver", "lazy");
  if (solver == "heuristic") {
    options.solver = Solver::kHeuristic;
  } else if (solver == "exact") {
    options.solver = Solver::kExact;
  } else if (solver == "both" || solver == "full") {
    options.solver = Solver::kBoth;
  } else if (solver == "lazy") {
    options.solver = Solver::kLazy;
  } else {
    reader.fail(codes::kInvalidArgument,
                "'solver' must be \"heuristic\", \"exact\", \"both\", \"full\" or \"lazy\"");
  }
  // Deterministic node budget only — no wall clock — so the response is a
  // pure function of the request. 0 ("unlimited") is clamped to the server
  // cap to keep a single request from monopolizing a worker.
  std::int64_t max_nodes =
      reader.get_int("max_nodes", limits.exact_max_nodes, 0, limits.exact_max_nodes);
  if (max_nodes == 0) max_nodes = limits.exact_max_nodes;
  options.exact_max_nodes = max_nodes;
  options.exact_timeout_ms = 0.0;
  std::int64_t max_cycles =
      reader.get_int("max_cycles", static_cast<std::int64_t>(limits.max_cycles), 0,
                     static_cast<std::int64_t>(limits.max_cycles));
  if (max_cycles == 0) max_cycles = static_cast<std::int64_t>(limits.max_cycles);
  options.max_cycles = static_cast<std::size_t>(max_cycles);
  // TD-instance reductions, on by default. Off is the ablation mode; it also
  // makes small node budgets observable (reduced instances usually prove at
  // zero search nodes). The degrade fallback inherits the flag, so degraded
  // payloads stay byte-identical to a direct heuristic request.
  options.simplify = reader.get_bool("simplify", true);
  options.certify = reader.get_bool("certify", false);
  if (reader.failed()) return arg_failure(reader);

  ResolvedModel model;
  if (auto failed = resolve_instance(ref, context, model)) return *failed;

  return memoized(model, context, request, [&]() -> Outcome {
    const bool wants_exact = options.solver != Solver::kHeuristic;

    // Registered models solve through the entry's pooled cache (we hold its
    // mutex via `memoized`); inline requests run the plain facade. Both
    // produce byte-identical payloads (cached_analysis.hpp).
    const auto solve = [&](const SizeQueuesOptions& opts) -> Result<Sizing> {
      return model.entry != nullptr
                 ? engine::size_queues_cached(*model.entry->cache, model.instance, opts)
                 : size_queues(model.instance, opts);
    };

    // The degrade fallback: the same request with "solver":"heuristic" and no
    // cancel token — its payload is byte-identical to direct heuristic
    // execution by construction. Runtime stays bounded by the cycle cap.
    const auto degrade = [&]() -> Outcome {
      SizeQueuesOptions fallback = options;
      fallback.solver = Solver::kHeuristic;
      fallback.cancel = util::CancelToken();
      const Result<Sizing> sizing = solve(fallback);
      if (!sizing) return from_error(sizing.error());
      Outcome outcome = sizing_outcome(*sizing);
      outcome.degraded = outcome.ok;
      return outcome;
    };

    if (context.deadline_expired || context.cancel.cancelled()) {
      // Deadline already gone before any solving started (queue wait ate it).
      // Policy "degrade" still buys the heuristic answer; "error" requests
      // normally never reach here (the server answers them at dequeue).
      if (policy != OnDeadline::kDegrade) {
        return Outcome::failure(codes::kDeadlineExceeded,
                                "deadline expired before size-queues started");
      }
      if (wants_exact) return degrade();
      // Heuristic-only request: nothing to degrade to — run it as asked,
      // untagged, with no token (the answer is exactly what was requested).
    } else {
      options.cancel = context.cancel;
    }

    const Result<Sizing> sizing = solve(options);
    if (!sizing) {
      if (sizing.error().code == ErrorCode::kTimeout) {
        // Cancelled during cycle enumeration. Even the heuristic needs the
        // full enumeration, so degrading cannot beat this deadline either.
        return Outcome::failure(codes::kDeadlineExceeded, sizing.error().message);
      }
      return from_error(sizing.error());
    }
    if (wants_exact && !sizing->exact_proved) {
      if (policy == OnDeadline::kDegrade) return degrade();
      if (sizing->exact_cancelled) {
        return Outcome::failure(codes::kDeadlineExceeded,
                                "deadline expired mid-exact-solve after " +
                                    std::to_string(sizing->exact_nodes) +
                                    " search nodes; raise deadline_ms or send "
                                    "\"on_deadline\":\"degrade\"");
      }
      // Node-budget trip with policy "error": the legacy payload (heuristic
      // weights, exact_proved:false) — still a pure function of the request.
    }
    return sizing_outcome(*sizing);
  });
}

Outcome do_insert_rs(ArgReader& reader, const ExecLimits& limits) {
  const std::string text = reader.get_netlist(limits);
  InsertRelayStationsOptions options;
  options.budget = static_cast<int>(reader.get_int("budget", 1, 0, limits.max_rs_budget));
  options.exhaustive = reader.get_bool("exhaustive", false);
  if (reader.failed()) return arg_failure(reader);
  const Result<Instance> parsed = parse_netlist(text);
  if (!parsed) return from_error(parsed.error());
  const Result<RelayInsertion> insertion = insert_relay_stations(*parsed, options);
  if (!insertion) return from_error(insertion.error());
  const Result<std::string> repaired = netlist_text(insertion->repaired);
  if (!repaired) return from_error(repaired.error());

  util::JsonWriter w;
  w.begin_object();
  w.key("original_ideal").value(insertion->original_ideal.to_string());
  w.key("best_practical").value(insertion->best_practical.to_string());
  w.key("added").value(insertion->added);
  w.key("reached_ideal").value(insertion->reached_ideal);
  w.key("configurations_tried").value(insertion->configurations_tried);
  w.key("netlist").value(*repaired);
  w.end_object();
  return Outcome::success(w.str());
}

Outcome do_lint(ArgReader& reader, const ExecLimits& limits, const ExecContext& context,
                const Request& request) {
  const ModelRef ref = read_model_ref(reader, limits);
  const std::string target = reader.get_string("target", "");
  const bool errors_only = reader.get_bool("errors_only", false);
  if (reader.failed()) return arg_failure(reader);

  linter::LintOptions options;
  options.errors_only = errors_only;
  if (!target.empty()) {
    try {
      options.target = util::rational_from_string(target);
    } catch (const std::exception& e) {
      return Outcome::failure(codes::kInvalidArgument, std::string("'target': ") + e.what());
    }
    if (options.target < util::Rational(0)) {
      return Outcome::failure(codes::kInvalidArgument, "'target' must be non-negative");
    }
  }

  ResolvedModel model;
  if (auto failed = resolve_instance(ref, context, model)) return *failed;
  return memoized(model, context, request, [&]() -> Outcome {
    const Result<linter::Report> report = lint(model.instance, options);
    if (!report) return from_error(report.error());

    linter::RenderItem item;
    item.lis = &model.instance.graph();
    item.report = &*report;
    item.provenance = model.instance.provenance();
    util::JsonWriter w;
    write_report_json(w, item);
    return Outcome::success(w.str());
  });
}

Outcome do_rate_safety(ArgReader& reader, const ExecLimits& limits, const ExecContext& context,
                       const Request& request) {
  const ModelRef ref = read_model_ref(reader, limits);
  if (reader.failed()) return arg_failure(reader);
  ResolvedModel model;
  if (auto failed = resolve_instance(ref, context, model)) return *failed;
  AnalyzeOptions options;
  options.critical_cycle = false;
  options.rate_safety = true;
  return memoized(model, context, request, [&]() -> Outcome {
    const Result<Analysis> analysis =
        model.entry != nullptr
            ? engine::analyze_cached(*model.entry->cache, model.instance, options)
            : analyze(model.instance, options);
    if (!analysis) return from_error(analysis.error());
    util::JsonWriter w;
    w.begin_object();
    w.key("hazards").value(analysis->rate_hazards);
    w.key("safe").value(analysis->rate_safe);
    w.end_object();
    return Outcome::success(w.str());
  });
}

Outcome do_simulate(ArgReader& reader, const ExecLimits& limits, const ExecContext& context,
                    const Request& request) {
  const OnDeadline policy = request.on_deadline;
  const ModelRef ref = read_model_ref(reader, limits);
  DesOptions options;
  options.horizon = reader.get_int("horizon", options.horizon, 1, limits.max_sim_horizon);
  options.warmup = reader.get_int("warmup", options.warmup, 0, limits.max_sim_horizon);
  options.seed = static_cast<std::uint64_t>(
      reader.get_int("seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
  const std::string dist = reader.get_string("dist", "");
  if (!dist.empty()) {
    const std::optional<des::LatencyDist> parsed = des::parse_latency_dist(dist);
    if (!parsed) {
      reader.fail(codes::kInvalidArgument,
                  "'dist' must be a latency spec (\"fixed:3\", \"uniform:1:4\", "
                  "\"geometric:1/2\"), got '" +
                      dist + "'");
    } else {
      options.channel_latency = *parsed;
    }
  }
  const std::string arrival = reader.get_string("arrival", "");
  if (!arrival.empty()) {
    const std::optional<des::ArrivalSpec> parsed = des::parse_arrival_spec(arrival);
    if (!parsed) {
      reader.fail(codes::kInvalidArgument,
                  "'arrival' must be an arrival spec (\"saturated\", \"rate:4\", "
                  "\"poisson:1/4\", \"bursty:8:8\"), got '" +
                      arrival + "'");
    } else {
      options.arrival = *parsed;
    }
  }
  const bool occupancy = reader.get_bool("occupancy", false);
  options.trace_occupancy = occupancy;
  options.reference = reader.get_string("reference", "");
  options.detect_period = reader.get_bool("detect_period", true);
  if (reader.failed()) return arg_failure(reader);

  ResolvedModel model;
  if (auto failed = resolve_instance(ref, context, model)) return *failed;
  return memoized(model, context, request, [&]() -> Outcome {
    if (context.deadline_expired && policy != OnDeadline::kDegrade) {
      return Outcome::failure(codes::kDeadlineExceeded,
                              "deadline expired before simulate started");
    }
    // Policy "degrade" has nothing cheaper to fall back to, so it runs the
    // request to completion (the header's contract for verbs with no
    // degraded form); "error" cancels cooperatively at batch boundaries.
    if (policy != OnDeadline::kDegrade) options.cancel = context.cancel;
    const Result<DesReport> simulated = simulate_des(model.instance, options);
    if (!simulated) {
      if (simulated.error().code == ErrorCode::kTimeout) {
        return Outcome::failure(codes::kDeadlineExceeded, simulated.error().message);
      }
      return from_error(simulated.error());
    }
    const DesReport& report = *simulated;
    util::JsonWriter w;
    w.begin_object();
    w.key("horizon").value(report.horizon);
    w.key("warmup").value(report.warmup);
    w.key("seed").value(static_cast<std::int64_t>(report.seed));
    w.key("deterministic").value(report.deterministic);
    w.key("cycles_run").value(report.cycles_run);
    w.key("events").value(report.events);
    w.key("firings").value(report.firings);
    w.key("throughput").value(report.throughput.to_string());
    w.key("periodic").value(report.periodic_found);
    if (report.periodic_found) {
      w.key("transient_cycles").value(report.transient_cycles);
      w.key("period_cycles").value(report.period_cycles);
    }
    w.key("arrivals_generated").value(report.arrivals_generated);
    w.key("arrivals_consumed").value(report.arrivals_consumed);
    w.key("max_backlog").value(report.max_backlog);
    w.key("stall_events").value(report.total_stall_events);
    w.key("stall_cycles").value(report.total_stall_cycles);
    w.key("channels").begin_array();
    for (const des::ChannelStats& ch : report.channels) {
      w.begin_object();
      w.key("src").value(model.instance.graph().core_name(ch.src));
      w.key("dst").value(model.instance.graph().core_name(ch.dst));
      w.key("capacity").value(ch.capacity);
      w.key("relay_stations").value(ch.relay_stations);
      w.key("tokens_in").value(ch.tokens_in);
      w.key("tokens_out").value(ch.tokens_out);
      w.key("in_flight").value(ch.in_flight);
      w.key("stall_events").value(ch.stall_events);
      w.key("stall_cycles").value(ch.stall_cycles);
      if (occupancy) {
        w.key("max_occupancy").value(ch.max_occupancy);
        w.key("p50").value(ch.p50);
        w.key("p95").value(ch.p95);
        w.key("p99").value(ch.p99);
        w.key("mean_occupancy").value(ch.mean_occupancy.to_string());
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return Outcome::success(w.str());
  });
}

void model_info_json(util::JsonWriter& w, const ModelInfo& info) {
  w.begin_object();
  w.key("model").value(info.fingerprint);
  w.key("bytes").value(info.bytes);
  w.key("cores").value(info.cores);
  w.key("channels").value(info.channels);
  w.key("relay_stations").value(info.relay_stations);
  w.end_object();
}

Outcome do_register_model(ArgReader& reader, const ExecLimits& limits,
                          const ExecContext& context) {
  const std::string text = reader.get_netlist(limits);
  if (reader.failed()) return arg_failure(reader);
  if (context.registry == nullptr) {
    return Outcome::failure(codes::kRegistryFull, "this server has no model registry");
  }
  const Result<ModelInfo> info = context.registry->register_model(text);
  if (!info) {
    // The registry reports "does not fit" as kInvalidArgument; on the wire
    // that is the dedicated registry_full code. Parse errors pass through.
    if (info.error().code == ErrorCode::kInvalidArgument) {
      return Outcome::failure(codes::kRegistryFull, info.error().message);
    }
    return from_error(info.error());
  }
  util::JsonWriter w;
  model_info_json(w, *info);
  return Outcome::success(w.str());
}

Outcome do_evict_model(ArgReader& reader, const ExecContext& context) {
  const std::string fingerprint = reader.get_model();
  if (fingerprint.empty() && !reader.failed()) {
    reader.fail(codes::kInvalidArgument, "'model' (string) is required");
  }
  if (reader.failed()) return arg_failure(reader);
  if (context.registry == nullptr || !context.registry->evict(fingerprint)) {
    return Outcome::failure(codes::kUnknownModel,
                            "model '" + fingerprint + "' is not registered");
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("model").value(fingerprint);
  w.key("evicted").value(true);
  w.end_object();
  return Outcome::success(w.str());
}

Outcome do_list_models(const ExecContext& context) {
  util::JsonWriter w;
  w.begin_object();
  w.key("models").begin_array();
  std::size_t resident = 0;
  std::size_t resident_bytes = 0;
  if (context.registry != nullptr) {
    for (const ModelInfo& info : context.registry->list()) model_info_json(w, info);
    const Registry::Stats stats = context.registry->stats();
    resident = stats.resident;
    resident_bytes = stats.bytes;
  }
  w.end_array();
  w.key("resident").value(resident);
  w.key("resident_bytes").value(resident_bytes);
  w.end_object();
  return Outcome::success(w.str());
}

}  // namespace

const char* wire_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo: return codes::kIo;
    case ErrorCode::kParse: return codes::kParse;
    case ErrorCode::kInvalidArgument: return codes::kInvalidArgument;
    case ErrorCode::kTimeout: return codes::kTimeout;
    case ErrorCode::kInternal: return codes::kInternal;
    case ErrorCode::kLint: return codes::kLint;
  }
  return codes::kInternal;
}

Outcome Outcome::success(std::string payload_json) {
  Outcome outcome;
  outcome.ok = true;
  outcome.payload = std::move(payload_json);
  return outcome;
}

Outcome Outcome::failure(std::string code, std::string message) {
  Outcome outcome;
  outcome.ok = false;
  outcome.error_code = std::move(code);
  outcome.error_message = std::move(message);
  return outcome;
}

Result<Request> parse_request(const std::string& line) {
  const util::JsonParse parsed = util::json_parse(line);
  if (!parsed) {
    return Error{ErrorCode::kParse, "request is not valid JSON: " + parsed.error};
  }
  if (!parsed.value.is_object()) {
    return Error{ErrorCode::kInvalidArgument, "request must be a JSON object"};
  }
  Request request;
  request.args = parsed.value;

  if (const util::Json* id = request.args.find("id")) {
    if (id->is_string()) {
      request.id = id->as_string();
      request.has_id = true;
    } else if (id->type() == util::Json::Type::kInt) {
      request.id = std::to_string(id->as_int());
      request.has_id = true;
    } else if (!id->is_null()) {
      return Error{ErrorCode::kInvalidArgument, "'id' must be a string or an integer"};
    }
  }

  const util::Json* verb = request.args.find("verb");
  if (verb == nullptr || !verb->is_string() || verb->as_string().empty()) {
    return Error{ErrorCode::kInvalidArgument, "'verb' (string) is required"};
  }
  request.verb = verb->as_string();

  if (const util::Json* deadline = request.args.find("deadline_ms")) {
    if (!deadline->is_number() || deadline->as_double() < 0.0) {
      return Error{ErrorCode::kInvalidArgument, "'deadline_ms' must be a non-negative number"};
    }
    request.deadline_ms = deadline->as_double();
  }

  if (const util::Json* policy = request.args.find("on_deadline")) {
    if (policy->is_string() && policy->as_string() == "error") {
      request.on_deadline = OnDeadline::kError;
    } else if (policy->is_string() && policy->as_string() == "degrade") {
      request.on_deadline = OnDeadline::kDegrade;
    } else if (!policy->is_null()) {
      return Error{ErrorCode::kInvalidArgument, "'on_deadline' must be \"error\" or \"degrade\""};
    }
  }
  return request;
}

Outcome execute(const Request& request, const ExecLimits& limits) {
  return execute(request, limits, ExecContext{});
}

Outcome execute(const Request& request, const ExecLimits& limits, const ExecContext& context) {
  ArgReader reader(request.args);
  if (request.verb == "ping") return do_ping();
  if (request.verb == "sleep") return do_sleep(reader, limits, context);
  if (request.verb == "parse") return do_parse(reader, limits);
  if (request.verb == "generate") return do_generate(reader, limits);
  if (request.verb == "analyze") return do_analyze(reader, limits, context, request);
  if (request.verb == "size-queues") return do_size_queues(reader, limits, context, request);
  if (request.verb == "insert-rs") return do_insert_rs(reader, limits);
  if (request.verb == "rate-safety") return do_rate_safety(reader, limits, context, request);
  if (request.verb == "lint") return do_lint(reader, limits, context, request);
  if (request.verb == "simulate") return do_simulate(reader, limits, context, request);
  if (request.verb == "register-model") return do_register_model(reader, limits, context);
  if (request.verb == "evict-model") return do_evict_model(reader, context);
  if (request.verb == "list-models") return do_list_models(context);
  return Outcome::failure(codes::kUnknownVerb,
                          "unknown verb '" + request.verb +
                              "' (expected ping, parse, generate, analyze, size-queues, "
                              "insert-rs, rate-safety, lint, simulate, register-model, "
                              "evict-model, list-models, sleep, hello or stats)");
}

std::string request_id_json(const Request& request) {
  return request.has_id ? util::json_quote(request.id) : "null";
}

std::string response_line(const Request& request, const Outcome& outcome, double server_ms,
                          double wait_ms, int protocol) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").raw(request_id_json(request));
  if (protocol >= 2) w.key("protocol").value(protocol);
  w.key("ok").value(outcome.ok);
  w.key("verb").value(request.verb);
  if (outcome.ok) {
    w.key("result").raw(outcome.payload);
  } else {
    w.key("error").begin_object();
    w.key("code").value(outcome.error_code);
    w.key("message").value(outcome.error_message);
    w.end_object();
  }
  if (outcome.degraded) w.key("degraded").value(true);
  w.key("server_ms").value_fixed(server_ms, 3);
  w.key("wait_ms").value_fixed(wait_ms, 3);
  w.end_object();
  return w.str();
}

std::string error_line(const std::string& id_json, const std::string& verb,
                       const std::string& code, const std::string& message, int protocol) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").raw(id_json.empty() ? "null" : id_json);
  if (protocol >= 2) w.key("protocol").value(protocol);
  w.key("ok").value(false);
  if (!verb.empty()) w.key("verb").value(verb);
  w.key("error").begin_object();
  w.key("code").value(code);
  w.key("message").value(message);
  w.end_object();
  w.end_object();
  return w.str();
}

Result<std::string> extract_result(const std::string& response) {
  const util::JsonParse parsed = util::json_parse(response);
  if (!parsed) {
    return Error{ErrorCode::kParse, "response is not valid JSON: " + parsed.error};
  }
  if (!parsed.value.is_object()) {
    return Error{ErrorCode::kParse, "response must be a JSON object"};
  }
  const util::Json* ok = parsed.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Error{ErrorCode::kParse, "response has no boolean 'ok'"};
  }
  if (!ok->as_bool()) {
    const util::Json* error = parsed.value.find("error");
    std::string code = "unknown";
    std::string message;
    if (error != nullptr && error->is_object()) {
      if (const util::Json* c = error->find("code")) code = c->as_string();
      if (const util::Json* m = error->find("message")) message = m->as_string();
    }
    return Error{ErrorCode::kInvalidArgument, "server error [" + code + "] " + message};
  }
  const util::Json* result = parsed.value.find("result");
  if (result == nullptr) {
    return Error{ErrorCode::kParse, "ok response has no 'result'"};
  }
  return result->dump();
}

}  // namespace lid::serve
