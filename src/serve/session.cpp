#include "serve/session.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "serve/frame.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace lid::serve {
namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kIo, what + ": " + std::strerror(errno)};
}

/// connect() bounded by `timeout_ms` (0 = the blocking OS default). The fd is
/// flipped to non-blocking for the attempt and restored after, so callers see
/// a plain blocking socket either way. A refused connection reports kIo
/// (errno text) immediately; only an attempt still pending after the budget
/// reports kTimeout.
Status connect_with_timeout(int fd, const sockaddr* addr, socklen_t len, double timeout_ms,
                            const std::string& what) {
  if (timeout_ms <= 0.0) {
    if (::connect(fd, addr, len) != 0) return errno_error(what);
    return Unit{};
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return errno_error("fcntl(O_NONBLOCK)");
  Status outcome = Unit{};
  util::Timer waited;
  while (::connect(fd, addr, len) != 0) {
    if (errno == EISCONN) break;  // a retried connect that completed
    if (errno == EINPROGRESS) {
      // TCP handshake pending: poll for writability, then read SO_ERROR.
      const double remaining = timeout_ms - waited.elapsed_ms();
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int ready =
          ::poll(&pfd, 1, remaining > 0.0 ? static_cast<int>(std::ceil(remaining)) : 0);
      if (ready < 0) {
        outcome = errno_error("poll");
      } else if (ready == 0) {
        outcome = Error{ErrorCode::kTimeout,
                        what + ": not connected within " + std::to_string(timeout_ms) + " ms"};
      } else {
        int so_error = 0;
        socklen_t so_len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0) {
          outcome = errno_error("getsockopt(SO_ERROR)");
        } else if (so_error != 0) {
          errno = so_error;
          outcome = errno_error(what);
        }
      }
      break;
    }
    if (errno == EAGAIN || errno == EINTR) {
      // EAGAIN on a Unix socket means the listener's backlog is full and the
      // connect did NOT start — poll cannot observe it, so retry until the
      // budget runs out.
      if (waited.elapsed_ms() >= timeout_ms) {
        outcome = Error{ErrorCode::kTimeout,
                        what + ": not connected within " + std::to_string(timeout_ms) + " ms"};
        break;
      }
      pollfd delay{};  // a short nap without pulling in <thread>
      (void)::poll(&delay, 0, 5);
      continue;
    }
    outcome = errno_error(what);
    break;
  }
  if (::fcntl(fd, F_SETFL, flags) != 0 && outcome) outcome = errno_error("fcntl(F_SETFL)");
  return outcome;
}

/// Decodes a response: on `ok` returns the compact `result` bytes, otherwise
/// an Error carrying the server's code + message. Also exposes the parsed
/// envelope for callers that need more than the payload.
Result<std::string> result_or_error(const std::string& response, util::Json* envelope_out) {
  const util::JsonParse parsed = util::json_parse(response);
  if (!parsed || !parsed.value.is_object()) {
    return Error{ErrorCode::kParse, "malformed response: not a JSON object"};
  }
  if (envelope_out != nullptr) *envelope_out = parsed.value;
  const util::Json* ok = parsed.value.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return Error{ErrorCode::kParse, "malformed response: no boolean 'ok'"};
  }
  if (!ok->as_bool()) {
    std::string code = "unknown";
    std::string message;
    if (const util::Json* error = parsed.value.find("error");
        error != nullptr && error->is_object()) {
      if (const util::Json* c = error->find("code"); c != nullptr && c->is_string()) {
        code = c->as_string();
      }
      if (const util::Json* m = error->find("message"); m != nullptr && m->is_string()) {
        message = m->as_string();
      }
    }
    return Error{ErrorCode::kInvalidArgument, "server error [" + code + "] " + message};
  }
  const util::Json* result = parsed.value.find("result");
  if (result == nullptr) {
    return Error{ErrorCode::kParse, "ok response has no 'result'"};
  }
  return result->dump();
}

}  // namespace

Session::Session(int fd, SessionOptions options) : fd_(fd), options_(options) {}

Result<Session> Session::connect_unix(const std::string& path, const SessionOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Error{ErrorCode::kInvalidArgument, "unix socket path too long: " + path};
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket(AF_UNIX)");
  const Status connected =
      connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                           options.connect_timeout_ms, "connect('" + path + "')");
  if (!connected) {
    ::close(fd);
    return connected.error();
  }
  Session session(fd, options);
  const Status negotiated = session.handshake();
  if (!negotiated) return negotiated.error();
  return session;
}

Result<Session> Session::connect_tcp(const std::string& host, int port,
                                     const SessionOptions& options) {
  if (port <= 0 || port > 65535) {
    return Error{ErrorCode::kInvalidArgument, "bad port " + std::to_string(port)};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Error{ErrorCode::kInvalidArgument, "bad host address '" + host + "'"};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket(AF_INET)");
  const Status connected = connect_with_timeout(
      fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr), options.connect_timeout_ms,
      "connect(" + host + ":" + std::to_string(port) + ")");
  if (!connected) {
    ::close(fd);
    return connected.error();
  }
  Session session(fd, options);
  const Status negotiated = session.handshake();
  if (!negotiated) return negotiated.error();
  return session;
}

Session::Session(Session&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      protocol_(other.protocol_),
      buffer_(std::move(other.buffer_)),
      next_id_(other.next_id_) {}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    protocol_ = other.protocol_;
    buffer_ = std::move(other.buffer_);
    next_id_ = other.next_id_;
  }
  return *this;
}

Session::~Session() { close(); }

void Session::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Session::handshake() {
  if (options_.binary && options_.protocol < 2) {
    return Error{ErrorCode::kInvalidArgument, "the binary transport requires protocol >= 2"};
  }
  if (options_.protocol < 1 || options_.protocol > kProtocolVersion) {
    return Error{ErrorCode::kInvalidArgument,
                 "unsupported client protocol " + std::to_string(options_.protocol)};
  }
  if (!options_.hello || options_.protocol < 2) {
    protocol_ = 1;
    return Unit{};
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("verb").value("hello");
  w.key("protocol").value(options_.protocol);
  w.key("transport").value(options_.binary ? "binary" : "ndjson");
  w.end_object();
  const Status sent = send_message(w.str());
  if (!sent) return sent.error();
  const Result<std::string> response = recv_message(options_.timeout_ms);
  if (!response) return response.error();

  util::Json envelope;
  const Result<std::string> payload = result_or_error(*response, &envelope);
  if (!payload) {
    // A pre-v2 server answers `unknown_verb`: stay on v1 (NDJSON only).
    if (const util::Json* error = envelope.find("error");
        error != nullptr && error->is_object()) {
      if (const util::Json* code = error->find("code");
          code != nullptr && code->is_string() && code->as_string() == codes::kUnknownVerb) {
        if (options_.binary) {
          return Error{ErrorCode::kInvalidArgument,
                       "server does not speak protocol 2; binary transport unavailable"};
        }
        protocol_ = 1;
        return Unit{};
      }
    }
    return payload.error();
  }
  const util::JsonParse parsed = util::json_parse(*payload);
  if (parsed && parsed.value.is_object()) {
    if (const util::Json* p = parsed.value.find("protocol"); p != nullptr && p->is_number()) {
      protocol_ = static_cast<int>(p->as_int());
    }
  }
  return Unit{};
}

Status Session::send_message(const std::string& json) {
  if (fd_ < 0) return Error{ErrorCode::kIo, "session is closed"};
  std::string wire;
  if (options_.binary) {
    std::string_view body = json;
    if (!body.empty() && body.back() == '\n') body.remove_suffix(1);
    wire = frame_message(body);
  } else {
    wire = json;
    if (wire.empty() || wire.back() != '\n') wire.push_back('\n');
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Unit{};
}

Result<std::string> Session::recv_message(double timeout_ms) {
  if (fd_ < 0) return Error{ErrorCode::kIo, "session is closed"};
  util::Timer waited;
  while (true) {
    // One complete message buffered? Frames and lines are distinguished per
    // message by the frame magic (which can never begin JSON).
    if (starts_frame(buffer_)) {
      const FrameDecode frame = decode_frame(buffer_, ~std::size_t{0});
      if (frame.status == FrameStatus::kBad) {
        return Error{ErrorCode::kParse, "bad response frame: " + frame.error};
      }
      if (frame.status == FrameStatus::kFrame) {
        std::string payload = frame.payload;
        buffer_.erase(0, frame.consumed);
        return payload;
      }
    } else {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
    }
    if (timeout_ms > 0.0) {
      const double remaining = timeout_ms - waited.elapsed_ms();
      if (remaining <= 0.0) {
        return Error{ErrorCode::kTimeout,
                     "no response within " + std::to_string(timeout_ms) + " ms"};
      }
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining)));
      if (ready < 0) {
        if (errno == EINTR) continue;
        return errno_error("poll");
      }
      if (ready == 0) continue;  // re-check remaining; expires next pass
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return Error{ErrorCode::kIo, "server closed the connection"};
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> Session::call(const std::string& json) {
  const Status sent = send_message(json);
  if (!sent) return sent.error();
  return recv_message(options_.timeout_ms);
}

Result<ModelHandle> Session::register_model(const std::string& netlist_text) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::int64_t>(++next_id_));
  w.key("verb").value("register-model");
  w.key("netlist").value(netlist_text);
  w.end_object();
  const Result<std::string> response = call(w.str());
  if (!response) return response.error();
  const Result<std::string> payload = result_or_error(*response, nullptr);
  if (!payload) return payload.error();
  const util::JsonParse parsed = util::json_parse(*payload);
  if (!parsed || !parsed.value.is_object()) {
    return Error{ErrorCode::kParse, "malformed register-model payload"};
  }
  ModelHandle handle;
  if (const util::Json* v = parsed.value.find("model"); v != nullptr && v->is_string()) {
    handle.fingerprint = v->as_string();
  }
  if (const util::Json* v = parsed.value.find("bytes"); v != nullptr && v->is_number()) {
    handle.bytes = static_cast<std::size_t>(v->as_int());
  }
  if (const util::Json* v = parsed.value.find("cores"); v != nullptr && v->is_number()) {
    handle.cores = static_cast<std::size_t>(v->as_int());
  }
  if (const util::Json* v = parsed.value.find("channels"); v != nullptr && v->is_number()) {
    handle.channels = static_cast<std::size_t>(v->as_int());
  }
  if (const util::Json* v = parsed.value.find("relay_stations"); v != nullptr && v->is_number()) {
    handle.relay_stations = static_cast<int>(v->as_int());
  }
  if (!handle.valid()) {
    return Error{ErrorCode::kParse, "register-model payload has no 'model' fingerprint"};
  }
  return handle;
}

Status Session::evict_model(const ModelHandle& model) {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::int64_t>(++next_id_));
  w.key("verb").value("evict-model");
  w.key("model").value(model.fingerprint);
  w.end_object();
  const Result<std::string> response = call(w.str());
  if (!response) return response.error();
  const Result<std::string> payload = result_or_error(*response, nullptr);
  if (!payload) return payload.error();
  return Unit{};
}

Result<std::string> Session::query(const ModelHandle& model, const std::string& verb,
                                   const std::string& extra_args_json) {
  if (!model.valid()) {
    return Error{ErrorCode::kInvalidArgument, "query: invalid (empty) model handle"};
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::int64_t>(++next_id_));
  w.key("verb").value(verb);
  w.key("model").value(model.fingerprint);
  if (!extra_args_json.empty()) {
    const util::JsonParse extra = util::json_parse(extra_args_json);
    if (!extra || !extra.value.is_object()) {
      return Error{ErrorCode::kInvalidArgument,
                   "query: extra_args_json must be a JSON object"};
    }
    for (const auto& [name, value] : extra.value.members()) {
      w.key(name).raw(value.dump());
    }
  }
  w.end_object();
  const Result<std::string> response = call(w.str());
  if (!response) return response.error();
  return result_or_error(*response, nullptr);
}

Result<std::string> Session::list_models() {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::int64_t>(++next_id_));
  w.key("verb").value("list-models");
  w.end_object();
  const Result<std::string> response = call(w.str());
  if (!response) return response.error();
  return result_or_error(*response, nullptr);
}

Result<std::string> Session::stats() {
  util::JsonWriter w;
  w.begin_object();
  w.key("id").value(static_cast<std::int64_t>(++next_id_));
  w.key("verb").value("stats");
  w.end_object();
  const Result<std::string> response = call(w.str());
  if (!response) return response.error();
  return result_or_error(*response, nullptr);
}

}  // namespace lid::serve
