#include "mg/marked_graph.hpp"

#include <sstream>

#include "graph/cycles.hpp"

namespace lid::mg {

TransitionId MarkedGraph::add_transition(TransitionKind kind, std::string name) {
  const TransitionId t = structure_.add_node();
  kinds_.push_back(kind);
  if (name.empty()) name = "t" + std::to_string(t);
  names_.push_back(std::move(name));
  return t;
}

PlaceId MarkedGraph::add_place(TransitionId src, TransitionId dst, std::int64_t tokens,
                               PlaceKind kind) {
  check_transition(src);
  check_transition(dst);
  LID_ENSURE(tokens >= 0, "add_place: negative token count");
  const PlaceId p = structure_.add_edge(src, dst);
  tokens_.push_back(tokens);
  place_kinds_.push_back(kind);
  return p;
}

TransitionKind MarkedGraph::transition_kind(TransitionId t) const {
  check_transition(t);
  return kinds_[static_cast<std::size_t>(t)];
}

const std::string& MarkedGraph::transition_name(TransitionId t) const {
  check_transition(t);
  return names_[static_cast<std::size_t>(t)];
}

PlaceKind MarkedGraph::place_kind(PlaceId p) const {
  check_place(p);
  return place_kinds_[static_cast<std::size_t>(p)];
}

std::int64_t MarkedGraph::tokens(PlaceId p) const {
  check_place(p);
  return tokens_[static_cast<std::size_t>(p)];
}

void MarkedGraph::set_tokens(PlaceId p, std::int64_t tokens) {
  check_place(p);
  LID_ENSURE(tokens >= 0, "set_tokens: negative token count");
  tokens_[static_cast<std::size_t>(p)] = tokens;
}

void MarkedGraph::add_tokens(PlaceId p, std::int64_t delta) {
  check_place(p);
  const std::int64_t updated = tokens_[static_cast<std::size_t>(p)] + delta;
  LID_ENSURE(updated >= 0, "add_tokens: token count would become negative");
  tokens_[static_cast<std::size_t>(p)] = updated;
}

std::int64_t MarkedGraph::cycle_tokens(const std::vector<PlaceId>& cycle) const {
  std::int64_t total = 0;
  for (const PlaceId p : cycle) {
    check_place(p);
    total += tokens_[static_cast<std::size_t>(p)];
  }
  return total;
}

void MarkedGraph::validate_lis_structure() const {
  // The initial marking of a LIS-derived marked graph is determined by the
  // producers: a shell latches a valid output before the first period (one
  // token on each of its outgoing forward places) while a relay station is
  // initialized with a void item (zero tokens). Relay stations pass data
  // straight through, so they have exactly one forward input and output.
  for (PlaceId p = 0; p < static_cast<PlaceId>(num_places()); ++p) {
    if (place_kind(p) != PlaceKind::kForward) continue;
    const TransitionId src = producer(p);
    const bool shell = transition_kind(src) == TransitionKind::kShell;
    const std::int64_t tok = tokens(p);
    if (shell && tok != 1) {
      std::ostringstream os;
      os << "shell '" << transition_name(src) << "' has an outgoing forward place with " << tok
         << " tokens (must be 1)";
      throw std::invalid_argument(os.str());
    }
    // Relay stations and internal pipeline stages are initialized void.
    if (!shell && tok != 0) {
      std::ostringstream os;
      os << "void-initialized transition '" << transition_name(src)
         << "' has an outgoing forward place with " << tok << " tokens (must be 0)";
      throw std::invalid_argument(os.str());
    }
  }
  for (TransitionId t = 0; t < static_cast<TransitionId>(num_transitions()); ++t) {
    if (transition_kind(t) != TransitionKind::kRelayStation) continue;
    std::size_t in_fwd = 0;
    std::size_t out_fwd = 0;
    for (const PlaceId p : structure_.in_edges(t)) {
      if (place_kind(p) == PlaceKind::kForward) ++in_fwd;
    }
    for (const PlaceId p : structure_.out_edges(t)) {
      if (place_kind(p) == PlaceKind::kForward) ++out_fwd;
    }
    if (in_fwd != 1 || out_fwd != 1) {
      std::ostringstream os;
      os << "relay station '" << transition_name(t) << "' must have exactly one incoming and "
         << "one outgoing forward place (has " << in_fwd << " in, " << out_fwd << " out)";
      throw std::invalid_argument(os.str());
    }
  }

  // Every cycle must carry at least one token, otherwise the system
  // deadlocks. Equivalent: the zero-token subgraph is acyclic (one DFS).
  if (!graph::find_cycle(structure_, [&](graph::EdgeId p) { return tokens(p) == 0; }).empty()) {
    throw std::invalid_argument("marked graph has a token-free cycle (deadlock)");
  }
}

}  // namespace lid::mg
