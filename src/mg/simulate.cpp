#include "mg/simulate.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/sim_loop.hpp"

namespace lid::mg {

SimulationResult simulate(const MarkedGraph& g, std::size_t max_steps, TransitionId reference,
                          const StepObserver& observer, const util::CancelToken& cancel) {
  LID_ENSURE(reference >= 0 && static_cast<std::size_t>(reference) < g.num_transitions(),
             "simulate: reference transition out of range");

  const graph::Digraph& s = g.structure();
  const std::size_t nt = g.num_transitions();

  SimulationResult result;
  result.firings.assign(nt, 0);

  std::vector<std::int64_t> marking = g.marking();
  result.max_tokens = marking;
  // Visited markings → (step index, reference firings at that step).
  std::map<std::vector<std::int64_t>, std::pair<std::size_t, std::int64_t>> seen;
  seen.emplace(marking, std::make_pair(std::size_t{0}, std::int64_t{0}));

  std::vector<char> fired(nt, 0);
  // Step-boundary cancellation through the shared scaffolding: strided so
  // the poll never dominates a step (the DES batch loop uses the same
  // helper, and with it the same stride, across all of its phases).
  util::StridedPoller poller(cancel);
  for (std::size_t step = 0; step < max_steps; ++step) {
    if (poller.poll()) {
      result.cancelled = true;
      break;
    }
    // Determine the enabled set from the current marking (all concurrently).
    for (TransitionId t = 0; t < static_cast<TransitionId>(nt); ++t) {
      bool enabled = true;
      for (const PlaceId p : s.in_edges(t)) {
        if (marking[static_cast<std::size_t>(p)] < 1) {
          enabled = false;
          break;
        }
      }
      fired[static_cast<std::size_t>(t)] = enabled ? 1 : 0;
    }
    // Fire: consume from inputs, produce to outputs.
    for (TransitionId t = 0; t < static_cast<TransitionId>(nt); ++t) {
      if (!fired[static_cast<std::size_t>(t)]) continue;
      result.firings[static_cast<std::size_t>(t)] += 1;
      for (const PlaceId p : s.in_edges(t)) marking[static_cast<std::size_t>(p)] -= 1;
      for (const PlaceId p : s.out_edges(t)) marking[static_cast<std::size_t>(p)] += 1;
    }
    for (std::size_t p = 0; p < marking.size(); ++p) {
      result.max_tokens[p] = std::max(result.max_tokens[p], marking[p]);
    }
    result.steps_run = step + 1;
    if (observer && !observer(step, fired)) break;

    const std::int64_t ref_fired = result.firings[static_cast<std::size_t>(reference)];
    const auto [it, inserted] =
        seen.emplace(marking, std::make_pair(result.steps_run, ref_fired));
    if (!inserted) {
      // Marking revisited: behaviour is periodic from it->second.first on.
      result.periodic_found = true;
      result.transient_steps = it->second.first;
      result.period_steps = result.steps_run - it->second.first;
      const std::int64_t window_firings = ref_fired - it->second.second;
      result.throughput =
          util::Rational(window_firings, static_cast<std::int64_t>(result.period_steps));
      return result;
    }
  }

  // No recurrence within budget: report the empirical rate over the full run.
  result.throughput = util::Rational(result.firings[static_cast<std::size_t>(reference)],
                                     static_cast<std::int64_t>(std::max<std::size_t>(result.steps_run, 1)));
  return result;
}

}  // namespace lid::mg
