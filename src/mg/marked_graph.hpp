// Timed marked graphs (decision-free Petri nets) — the paper's modeling
// framework for latency-insensitive systems (Sec. III).
//
// In a marked graph every place has exactly one producer and one consumer
// transition, so a place is simply an edge between two transitions carrying a
// token count. We therefore represent a marked graph as a directed multigraph
// over transitions whose edges are the places. All transitions have unit
// delay (LISs are synchronous — Sec. III-B), so a cycle's mean is its token
// count divided by its place count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace lid::mg {

using TransitionId = graph::NodeId;
using PlaceId = graph::EdgeId;

/// What a transition models in a LIS-derived marked graph. Generic marked
/// graphs not derived from a LIS use kShell for everything.
enum class TransitionKind : std::uint8_t {
  kShell,          ///< a core's output stage (latched valid output at reset)
  kRelayStation,   ///< a clocked buffer with twofold capacity on a channel
  kPipelineStage,  ///< an internal stage of a pipelined core (void at reset;
                   ///< footnote 3 of the paper — cores with latency > 1)
};

/// Whether a place models a forward data channel hop or a backpressure
/// (queue-space) hop. Ideal (undoubled) graphs only have forward places.
enum class PlaceKind : std::uint8_t {
  kForward,
  kBackward,
};

/// A timed marked graph with unit transition delays.
class MarkedGraph {
 public:
  MarkedGraph() = default;

  /// Adds a transition; `name` is used in traces and error messages.
  TransitionId add_transition(TransitionKind kind, std::string name = {});

  /// Adds a place from `src` to `dst` holding `tokens` initial tokens.
  PlaceId add_place(TransitionId src, TransitionId dst, std::int64_t tokens,
                    PlaceKind kind = PlaceKind::kForward);

  [[nodiscard]] std::size_t num_transitions() const { return structure_.num_nodes(); }
  [[nodiscard]] std::size_t num_places() const { return structure_.num_edges(); }

  [[nodiscard]] const graph::Digraph& structure() const { return structure_; }

  [[nodiscard]] TransitionKind transition_kind(TransitionId t) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] PlaceKind place_kind(PlaceId p) const;
  [[nodiscard]] std::int64_t tokens(PlaceId p) const;
  [[nodiscard]] const std::vector<std::int64_t>& marking() const { return tokens_; }

  /// Producer / consumer transitions of a place.
  [[nodiscard]] TransitionId producer(PlaceId p) const { return structure_.edge(p).src; }
  [[nodiscard]] TransitionId consumer(PlaceId p) const { return structure_.edge(p).dst; }

  /// Overwrites the initial token count of a place.
  void set_tokens(PlaceId p, std::int64_t tokens);

  /// Adds `delta` tokens to a place (delta may not drive the count negative).
  void add_tokens(PlaceId p, std::int64_t delta);

  /// Total tokens currently on the given cycle (list of place ids).
  [[nodiscard]] std::int64_t cycle_tokens(const std::vector<PlaceId>& cycle) const;

  /// Validates the structural restrictions of LIS-derived marked graphs
  /// (Sec. III-B): a shell's outgoing forward places hold one token (its
  /// initial latched output), a relay station's outgoing forward place holds
  /// zero tokens (it is initialized void) and a relay station has exactly
  /// one incoming and one outgoing forward place; every cycle carries at
  /// least one token. Throws std::invalid_argument on the first violation.
  void validate_lis_structure() const;

 private:
  void check_place(PlaceId p) const {
    LID_ENSURE(p >= 0 && static_cast<std::size_t>(p) < tokens_.size(), "place id out of range");
  }
  void check_transition(TransitionId t) const {
    LID_ENSURE(t >= 0 && static_cast<std::size_t>(t) < kinds_.size(), "transition id out of range");
  }

  graph::Digraph structure_;
  std::vector<std::int64_t> tokens_;
  std::vector<PlaceKind> place_kinds_;
  std::vector<TransitionKind> kinds_;
  std::vector<std::string> names_;
};

}  // namespace lid::mg
