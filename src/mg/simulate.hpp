// Synchronous step-semantics simulator for marked graphs (Sec. III-B).
//
// At every step all enabled transitions fire concurrently — this casts the
// marked graph into the synchronous paradigm, one step per clock period. The
// simulator provides a dynamic cross-check of the static MST analysis: for a
// strongly connected graph the measured firing rate must equal θ(G) exactly,
// which the test suite verifies on randomly generated systems.
#pragma once

#include <functional>
#include <vector>

#include "mg/marked_graph.hpp"
#include "util/cancel.hpp"
#include "util/rational.hpp"

namespace lid::mg {

/// Outcome of a bounded simulation.
struct SimulationResult {
  /// True when the marking sequence became periodic within the step budget.
  bool periodic_found = false;
  /// Steps before the first marking of the periodic regime (meaningful only
  /// when periodic_found).
  std::size_t transient_steps = 0;
  /// Length of the periodic regime (meaningful only when periodic_found).
  std::size_t period_steps = 0;
  /// Exact sustained firing rate of the reference transition over one period
  /// when periodic_found; otherwise the empirical rate over the full run.
  util::Rational throughput;
  /// Total firings of every transition over the full run.
  std::vector<std::int64_t> firings;
  /// Highest token count each place reached during the run (including the
  /// initial marking). Under the synchronous step semantics this is a lower
  /// bound on the structural place bound of mg/analysis.hpp.
  std::vector<std::int64_t> max_tokens;
  /// Steps actually executed.
  std::size_t steps_run = 0;
  /// True when the cancel token stopped the run before max_steps / recurrence;
  /// the empirical stats cover only the steps actually executed.
  bool cancelled = false;
};

/// Callback invoked after every step with the step index and, per transition,
/// whether it fired. Return false to stop the simulation early.
using StepObserver = std::function<bool(std::size_t step, const std::vector<char>& fired)>;

/// Simulates up to `max_steps` steps from the graph's initial marking.
/// `reference` selects the transition whose sustained rate is reported.
/// `cancel` is polled every 256 steps; a fired token ends the run early with
/// `cancelled` set (the default token never cancels).
SimulationResult simulate(const MarkedGraph& g, std::size_t max_steps,
                          TransitionId reference = 0, const StepObserver& observer = nullptr,
                          const util::CancelToken& cancel = {});

}  // namespace lid::mg
