// Minimum cycle mean and maximal sustainable throughput (MST) of a timed
// marked graph with unit delays (Sec. III-C of the paper).
//
// The cycle mean of a cycle is its token count divided by its place count;
// the cycle time π(G) of a strongly connected graph is the reciprocal of the
// minimum cycle mean, and the MST is
//     θ(G) = 1                         if G is acyclic,
//     θ(G) = min(1, 1/π(G))            if G is strongly connected,
//     θ(G) = min over SCCs of θ(SCC)   otherwise.
// Since every cycle lives inside one SCC, the general case reduces to
// min(1, minimum cycle mean over the whole graph).
//
// Two independent algorithms are provided: Karp's dynamic program (the
// correctness reference, O(V·E)) and Howard's policy iteration (usually much
// faster, also yields a critical cycle). Both use exact rational arithmetic.
#pragma once

#include <optional>
#include <vector>

#include "mg/marked_graph.hpp"
#include "util/rational.hpp"

namespace lid::mg {

/// A cycle together with its (token/place) mean.
struct MeanCycle {
  util::Rational mean;
  std::vector<PlaceId> cycle;
};

/// Minimum cycle mean via Karp's algorithm, or nullopt if `g` is acyclic.
std::optional<util::Rational> min_cycle_mean_karp(const MarkedGraph& g);

/// Minimum cycle mean and one critical cycle via Howard's policy iteration,
/// or nullopt if `g` is acyclic.
std::optional<MeanCycle> min_cycle_mean_howard(const MarkedGraph& g);

/// Cycle time π(G) = 1 / minimum cycle mean. Requires `g` to be strongly
/// connected with at least one cycle; throws std::invalid_argument otherwise
/// (including on a token-free critical cycle, whose cycle time is infinite).
util::Rational cycle_time(const MarkedGraph& g);

/// Maximal sustainable throughput θ(g) per the definition above.
/// Throws std::invalid_argument if some cycle carries no token (deadlock —
/// the throughput would be zero and the LIS model forbids such markings).
util::Rational mst(const MarkedGraph& g);

/// Like mst() but deadlocked graphs report throughput 0 instead of throwing.
util::Rational mst_allowing_deadlock(const MarkedGraph& g);

}  // namespace lid::mg
