// Minimum cycle mean and maximal sustainable throughput (MST) of a timed
// marked graph with unit delays (Sec. III-C of the paper).
//
// The cycle mean of a cycle is its token count divided by its place count;
// the cycle time π(G) of a strongly connected graph is the reciprocal of the
// minimum cycle mean, and the MST is
//     θ(G) = 1                         if G is acyclic,
//     θ(G) = min(1, 1/π(G))            if G is strongly connected,
//     θ(G) = min over SCCs of θ(SCC)   otherwise.
// Since every cycle lives inside one SCC, the general case reduces to
// min(1, minimum cycle mean over the whole graph).
//
// Two independent algorithms are provided: Karp's dynamic program (the
// correctness reference, O(V·E)) and Howard's policy iteration (usually much
// faster, also yields a critical cycle). Both use exact rational arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mg/marked_graph.hpp"
#include "util/rational.hpp"

namespace lid::mg {

/// A cycle together with its (token/place) mean.
struct MeanCycle {
  util::Rational mean;
  std::vector<PlaceId> cycle;
};

/// Optimality evidence for a minimum-cycle-mean computation, in the shape an
/// independent O(E) checker can validate without re-running any solver:
///
///   * `critical` — a minimum-mean cycle (place ids), absent when acyclic;
///   * `component[t]` — a component label per transition such that every
///     cross-component place satisfies component[src] > component[dst]
///     (a reverse topological order of the condensation), so any cycle stays
///     inside one label class;
///   * per cyclic component c, a local bound `lambda[c] = p/q` with
///     lambda[c] >= critical->mean, and integer node potentials
///     `potential[t]` (meaning pi_t = potential[t] / q) satisfying, for every
///     place u -> v inside c with w tokens,
///         q*w - p + potential[v] - potential[u] >= 0.
///     Summing around any cycle of c proves its mean >= lambda[c] >= theta;
///     the witness cycle attaining mean == theta proves optimality.
///
/// Potentials come from Howard's converged value vector (validated in one
/// O(E) pass) with an exact Bellman-Ford fallback, so emitted evidence is
/// always self-consistent.
struct McmEvidence {
  std::optional<MeanCycle> critical;
  std::vector<int> component;          ///< per transition
  std::vector<char> component_cyclic;  ///< per component
  std::vector<util::Rational> lambda;  ///< per component (1 for acyclic ones)
  std::vector<std::int64_t> potential; ///< per transition, scaled by lambda[c].den()
};

/// Minimum cycle mean with checkable optimality evidence (see McmEvidence).
McmEvidence mcm_evidence(const MarkedGraph& g);

/// Counters a Workspace accumulates across solves (never reset).
struct WorkspaceStats {
  std::int64_t cold_starts = 0;    ///< per-SCC solves seeded from scratch
  std::int64_t warm_restarts = 0;  ///< per-SCC solves seeded from a previous policy
  std::int64_t improvement_rounds = 0;  ///< total policy-iteration rounds run
};

struct WorkspaceImpl;
class Workspace;

/// Minimum cycle mean via Karp's algorithm, or nullopt if `g` is acyclic.
/// Independent correctness reference for cross-checks; its per-SCC walk
/// table costs O(V^2) memory, so keep it to small instances — every
/// production path (mst, cycle_time, analysis, certificates) runs Howard.
std::optional<util::Rational> min_cycle_mean_karp(const MarkedGraph& g);

/// Minimum cycle mean and one critical cycle via Howard's policy iteration,
/// or nullopt if `g` is acyclic.
std::optional<MeanCycle> min_cycle_mean_howard(const MarkedGraph& g);

/// Workspace-backed Howard solve. Writes the minimum mean and one critical
/// cycle into `out` (reusing `out.cycle`'s buffer) and returns true; returns
/// false when `g` is acyclic, leaving `out.cycle` cleared and `out.mean`
/// untouched. Results are deterministic for a given call sequence, but a
/// warm-started solve may report a *different* (equally minimal) critical
/// cycle than a cold one.
bool min_cycle_mean_howard(const MarkedGraph& g, Workspace& ws, MeanCycle& out);

/// Maximal sustainable throughput via the workspace-backed Howard solver.
/// Exactly equal to mst() — both use exact rationals — but allocation-free
/// once the workspace is warm. Throws like mst() on a token-free cycle.
util::Rational mst_howard(const MarkedGraph& g, Workspace& ws);

/// Reusable state for warm-started Howard solves: cached SCC views, the last
/// converged policy per SCC, and every scratch vector the kernel needs.
///
/// Warm-start contract: a workspace may be handed any sequence of graphs, but
/// it only warm-starts (refreshing edge weights in place and seeding policy
/// iteration from the previous policy) when the graph has the SAME structure
/// as the previous call — identical transitions and places with identical
/// endpoints, differing at most in marking. This is exactly the lazy sizing
/// loop's shape (re-solves after token perturbations). Structure changes are
/// detected via a fingerprint and demoted to a cold start, never a wrong
/// answer. Not thread-safe: use one workspace per thread.
class Workspace {
 public:
  Workspace();
  ~Workspace();
  Workspace(Workspace&&) noexcept;
  Workspace& operator=(Workspace&&) noexcept;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  [[nodiscard]] const WorkspaceStats& stats() const;

 private:
  friend bool min_cycle_mean_howard(const MarkedGraph& g, Workspace& ws, MeanCycle& out);
  friend util::Rational mst_howard(const MarkedGraph& g, Workspace& ws);

  std::unique_ptr<WorkspaceImpl> impl_;
};

/// Cycle time π(G) = 1 / minimum cycle mean. Requires `g` to be strongly
/// connected with at least one cycle; throws std::invalid_argument otherwise
/// (including on a token-free critical cycle, whose cycle time is infinite).
util::Rational cycle_time(const MarkedGraph& g);

/// Maximal sustainable throughput θ(g) per the definition above.
/// Throws std::invalid_argument if some cycle carries no token (deadlock —
/// the throughput would be zero and the LIS model forbids such markings).
util::Rational mst(const MarkedGraph& g);

/// Like mst() but deadlocked graphs report throughput 0 instead of throwing.
util::Rational mst_allowing_deadlock(const MarkedGraph& g);

}  // namespace lid::mg
