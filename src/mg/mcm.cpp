#include "mg/mcm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <limits>
#include <memory>
#include <utility>

#include "graph/cycles.hpp"
#include "graph/scc.hpp"
#include "util/check.hpp"

namespace lid::mg {
namespace {

using graph::EdgeId;
using graph::NodeId;
using util::Rational;

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// A per-SCC view with local node indices; edges carry their original place
/// id and token weight.
struct LocalScc {
  struct LocalEdge {
    int src;
    int dst;
    std::int64_t weight;
    PlaceId place;
  };
  int n = 0;
  std::vector<LocalEdge> edges;
  std::vector<std::vector<int>> out;  // indices into `edges`
};

LocalScc make_local(const MarkedGraph& g, const graph::SccPartition& part, int comp) {
  const auto& members = part.members[static_cast<std::size_t>(comp)];
  std::vector<int> local_of(g.num_transitions(), -1);
  for (std::size_t i = 0; i < members.size(); ++i) {
    local_of[static_cast<std::size_t>(members[i])] = static_cast<int>(i);
  }
  LocalScc local;
  local.n = static_cast<int>(members.size());
  local.out.resize(members.size());
  const graph::Digraph& s = g.structure();
  for (const NodeId v : members) {
    for (const EdgeId e : s.out_edges(v)) {
      const NodeId w = s.edge(e).dst;
      if (part.comp_of[static_cast<std::size_t>(w)] != comp) continue;
      const int lu = local_of[static_cast<std::size_t>(v)];
      const int lw = local_of[static_cast<std::size_t>(w)];
      local.out[static_cast<std::size_t>(lu)].push_back(static_cast<int>(local.edges.size()));
      local.edges.push_back({lu, lw, g.tokens(e), e});
    }
  }
  return local;
}

/// Karp's minimum cycle mean on one strongly connected component.
Rational karp_on_scc(const LocalScc& local) {
  const int n = local.n;
  LID_ASSERT(n >= 1, "karp_on_scc: empty SCC");
  // D[k][v] = min weight of a walk with exactly k edges from node 0 to v.
  std::vector<std::vector<std::int64_t>> d(static_cast<std::size_t>(n) + 1,
                                           std::vector<std::int64_t>(n, kInf));
  d[0][0] = 0;
  for (int k = 1; k <= n; ++k) {
    for (const auto& e : local.edges) {
      const std::int64_t base = d[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(e.src)];
      if (base == kInf) continue;
      auto& cell = d[static_cast<std::size_t>(k)][static_cast<std::size_t>(e.dst)];
      cell = std::min(cell, base + e.weight);
    }
  }

  bool found = false;
  Rational best;
  for (int v = 0; v < n; ++v) {
    const std::int64_t dn = d[static_cast<std::size_t>(n)][static_cast<std::size_t>(v)];
    if (dn == kInf) continue;
    bool have_term = false;
    Rational worst;
    for (int k = 0; k < n; ++k) {
      const std::int64_t dk = d[static_cast<std::size_t>(k)][static_cast<std::size_t>(v)];
      if (dk == kInf) continue;
      const Rational term(dn - dk, n - k);
      if (!have_term || term > worst) {
        worst = term;
        have_term = true;
      }
    }
    LID_ASSERT(have_term, "karp_on_scc: no finite prefix for a reachable node");
    if (!found || worst < best) {
      best = worst;
      found = true;
    }
  }
  LID_ASSERT(found, "karp_on_scc: strongly connected component without a cycle");
  return best;
}

/// True when some cycle of the SCC has mean strictly below p/q: Bellman-Ford
/// from a virtual source over integer reduced costs q*w(e) - p fails to
/// stabilize exactly when a negative reduced-cost cycle exists.
bool has_cycle_mean_below(const LocalScc& local, __int128 p, std::int64_t q) {
  const auto n = static_cast<std::size_t>(local.n);
  std::vector<__int128> dist(n, 0);
  for (int pass = 0; pass <= local.n; ++pass) {
    bool changed = false;
    for (const auto& e : local.edges) {
      const __int128 cand = dist[static_cast<std::size_t>(e.src)] +
                            static_cast<__int128>(q) * e.weight - p;
      if (cand < dist[static_cast<std::size_t>(e.dst)]) {
        dist[static_cast<std::size_t>(e.dst)] = cand;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

/// The minimum-denominator fraction in the closed interval [a/b, c/d]
/// (0 <= a/b <= c/d), by Stern-Brocot / continued-fraction descent. Used to
/// recover an exact cycle mean from a bisection bracket: once the bracket is
/// narrower than 1/n^2 it contains exactly one fraction with denominator
/// <= n, and that fraction is the minimum-denominator one.
Rational simplest_between(__int128 a, __int128 b, __int128 c, __int128 d) {
  // Convergent accumulation: the result is the continued fraction
  // [i0; i1, ..., t] and equals (p1*t + p0) / (q1*t + q0) at termination.
  __int128 p0 = 0;
  __int128 q0 = 1;
  __int128 p1 = 1;
  __int128 q1 = 0;
  for (;;) {
    const __int128 i = a / b;
    const __int128 r = a - i * b;
    const __int128 ceil_lo = i + (r != 0 ? 1 : 0);
    if (ceil_lo * d <= c) {
      // An integer lies in the (shifted) interval: it terminates the descent.
      const __int128 num = p1 * ceil_lo + p0;
      const __int128 den = q1 * ceil_lo + q0;
      LID_ASSERT(num >= std::numeric_limits<std::int64_t>::min() &&
                     num <= std::numeric_limits<std::int64_t>::max() && den > 0 &&
                     den <= std::numeric_limits<std::int64_t>::max(),
                 "simplest_between: result exceeds int64");
      return Rational(static_cast<std::int64_t>(num), static_cast<std::int64_t>(den));
    }
    // Same integer gap: emit coefficient i, recurse on the reciprocal of the
    // fractional parts (which swaps the interval's endpoints).
    const __int128 np1 = p1 * i + p0;
    const __int128 nq1 = q1 * i + q0;
    p0 = p1;
    q0 = q1;
    p1 = np1;
    q1 = nq1;
    const __int128 na = d;
    const __int128 nb = c - i * d;
    const __int128 nc = b;
    const __int128 nd = r;
    a = na;
    b = nb;
    c = nc;
    d = nd;
  }
}

/// Exact minimum cycle mean in O(V+E) memory: bisect the mean over a
/// power-of-two grid with integer negative-cycle tests until the bracket is
/// narrower than 1/n^2, then recover the unique denominator-<=-n fraction
/// inside it. Time is O(V*E*log(n*W)) — acceptable only on the
/// policy-iteration paranoia path, where Karp's O(V^2) table would not fit
/// in memory at this node count.
Rational parametric_mcm(const LocalScc& local) {
  std::int64_t wmax = 0;
  for (const auto& e : local.edges) wmax = std::max(wmax, e.weight);
  // Bracket invariant: no cycle mean < lo, some cycle mean < hi, with
  // lo = num_lo / 2^k and hi = num_hi / 2^k. Token weights are nonnegative,
  // so 0 is a valid lower bound; wmax + 1 exceeds every cycle mean.
  __int128 num_lo = 0;
  __int128 num_hi = wmax + 1;
  std::int64_t q = 1;  // common denominator 2^k
  const __int128 n2 = static_cast<__int128>(local.n) * local.n;
  while ((num_hi - num_lo) * n2 >= q) {
    const __int128 mid = num_lo + num_hi;  // over denominator 2^(k+1)
    LID_ASSERT(q <= std::numeric_limits<std::int64_t>::max() / 2,
               "parametric_mcm: bisection denominator exceeds int64");
    q *= 2;
    if (has_cycle_mean_below(local, mid, q)) {
      num_hi = mid;
      num_lo *= 2;
    } else {
      num_lo = mid;
      num_hi *= 2;
    }
  }
  const Rational mu = simplest_between(num_lo, q, num_hi, q);
  LID_ASSERT(mu.den() <= local.n, "parametric_mcm: recovered mean has an impossible denominator");
  return mu;
}

/// Karp's O(V^2) walk table stays affordable up to this many nodes (~134 MB);
/// larger components use the O(V+E)-memory parametric search instead.
constexpr int kKarpTableMaxNodes = 4096;

/// Exact critical-cycle extraction used when policy iteration fails to
/// settle: take the exact minimum mean μ = p/q (Karp when the table fits,
/// parametric search beyond), compute Bellman-Ford potentials for integer
/// reduced costs q*w(e) - p, and walk the tight subgraph (edges achieving
/// equality), which always contains a μ-mean cycle. The cycle is written
/// into `cycle_out` (buffer reused); the mean μ is returned.
Rational exact_fallback_cycle(const LocalScc& local, std::vector<PlaceId>& cycle_out) {
  const Rational mu =
      local.n <= kKarpTableMaxNodes ? karp_on_scc(local) : parametric_mcm(local);
  const auto n = static_cast<std::size_t>(local.n);
  const std::int64_t p = mu.num();
  const std::int64_t q = mu.den();
  // Bellman-Ford from a virtual source connected to every node with cost 0.
  std::vector<__int128> dist(n, 0);
  for (int pass = 0; pass < local.n; ++pass) {
    bool changed = false;
    for (const auto& e : local.edges) {
      const __int128 cand = dist[static_cast<std::size_t>(e.src)] +
                            static_cast<__int128>(q) * e.weight - p;
      if (cand < dist[static_cast<std::size_t>(e.dst)]) {
        dist[static_cast<std::size_t>(e.dst)] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Tight edges: dist[dst] == dist[src] + q*w - p. Around a critical cycle
  // all inequalities hold with equality, so the tight subgraph contains a
  // cycle, and every cycle of the tight subgraph has reduced cost 0, i.e.
  // mean μ.
  graph::Digraph tight_graph(n);
  std::vector<int> tight_origin;  // tight-graph edge -> local edge index
  for (int e = 0; e < static_cast<int>(local.edges.size()); ++e) {
    const auto& edge = local.edges[static_cast<std::size_t>(e)];
    if (dist[static_cast<std::size_t>(edge.dst)] ==
        dist[static_cast<std::size_t>(edge.src)] + static_cast<__int128>(q) * edge.weight - p) {
      tight_graph.add_edge(edge.src, edge.dst);
      tight_origin.push_back(e);
    }
  }
  cycle_out.clear();
  for (const graph::EdgeId te : graph::find_cycle(tight_graph)) {
    cycle_out.push_back(
        local.edges[static_cast<std::size_t>(tight_origin[static_cast<std::size_t>(te)])].place);
  }
  LID_ASSERT(!cycle_out.empty(), "exact_fallback_cycle: tight subgraph has no cycle");
  return mu;
}

/// Scratch vectors shared by every Howard solve issued through one workspace
/// (or one top-level call): sized for the largest SCC seen, never shrunk, so
/// a warm re-solve allocates nothing.
///
/// Values are kept as scaled integers, not Rationals: within one policy
/// chain tree every node inherits the lambda p/q of its root cycle, so the
/// exact value is value_s[v] / lambda[v].den(). Keeping the integer numerator
/// makes every evaluation and phase-2 comparison a handful of integer ops —
/// the Rational representation paid a gcd normalization per edge per round,
/// which dominated the solve on 10^5-node components.
struct HowardScratch {
  std::vector<Rational> lambda;
  std::vector<__int128> value_s;  // value numerator, scaled by lambda's den
  std::vector<int> cycle_stamp;
  std::vector<char> evaluated;
  std::vector<int> chain;
  std::vector<int> cyc;
  std::vector<int> walk;
  std::vector<int> seen_at;
  std::vector<PlaceId> cycle;  // critical-cycle output buffer
};

/// Howard's policy iteration (min cycle mean) on one strongly connected
/// component. Returns the minimum mean; the critical cycle (place ids) lands
/// in `sc.cycle`. `policy` is in/out: when sized to the SCC it seeds the
/// iteration (warm start — any valid policy converges to the same minimum
/// mean), otherwise it is (re)seeded with each node's minimum-weight
/// out-edge. `rounds` accumulates policy-improvement rounds.
Rational howard_on_scc(const LocalScc& local, std::vector<int>& policy, HowardScratch& sc,
                       std::int64_t& rounds) {
  const int n = local.n;
  const auto ns = static_cast<std::size_t>(n);
  // Policy: chosen out-edge (index into local.edges) per node.
  if (policy.size() != ns) {
    policy.assign(ns, -1);
    for (int v = 0; v < n; ++v) {
      const auto& outs = local.out[static_cast<std::size_t>(v)];
      LID_ASSERT(!outs.empty(), "howard_on_scc: SCC node without internal out-edge");
      int best = outs.front();
      for (const int e : outs) {
        if (local.edges[static_cast<std::size_t>(e)].weight <
            local.edges[static_cast<std::size_t>(best)].weight) {
          best = e;
        }
      }
      policy[static_cast<std::size_t>(v)] = best;
    }
  }

  sc.lambda.assign(ns, Rational());
  sc.value_s.assign(ns, 0);
  sc.cycle_stamp.assign(ns, -1);  // which evaluation round visited the node
  sc.evaluated.assign(ns, 0);
  auto& lambda = sc.lambda;
  auto& value_s = sc.value_s;
  auto& cycle_stamp = sc.cycle_stamp;
  auto& evaluated = sc.evaluated;

  const auto evaluate = [&] {
    std::fill(evaluated.begin(), evaluated.end(), 0);
    std::fill(cycle_stamp.begin(), cycle_stamp.end(), -1);
    int round = 0;
    for (int start = 0; start < n; ++start) {
      if (evaluated[static_cast<std::size_t>(start)]) continue;
      // Follow the policy chain until we hit an evaluated node or revisit a
      // node from this walk (found the policy cycle).
      auto& chain = sc.chain;
      chain.clear();
      int v = start;
      while (!evaluated[static_cast<std::size_t>(v)] &&
             cycle_stamp[static_cast<std::size_t>(v)] != round) {
        cycle_stamp[static_cast<std::size_t>(v)] = round;
        chain.push_back(v);
        v = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(v)])].dst;
      }
      if (!evaluated[static_cast<std::size_t>(v)]) {
        // v lies on a fresh policy cycle: compute its mean, then values.
        std::int64_t tokens = 0;
        std::int64_t length = 0;
        int u = v;
        do {
          tokens += local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(u)])].weight;
          ++length;
          u = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(u)])].dst;
        } while (u != v);
        const Rational mean(tokens, length);
        // Collect the cycle and anchor at its minimum node id (a
        // deterministic anchor keeps values comparable across evaluation
        // rounds, which phase-2 termination relies on), then solve
        // value[u] = w(u) - mean + value[next(u)] in reverse visit order.
        auto& cyc = sc.cyc;
        cyc.clear();
        u = v;
        do {
          cyc.push_back(u);
          u = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(u)])].dst;
        } while (u != v);
        std::rotate(cyc.begin(), std::min_element(cyc.begin(), cyc.end()), cyc.end());
        const int anchor = cyc.front();
        lambda[static_cast<std::size_t>(anchor)] = mean;
        value_s[static_cast<std::size_t>(anchor)] = 0;
        evaluated[static_cast<std::size_t>(anchor)] = 1;
        const std::int64_t p = mean.num();
        const std::int64_t q = mean.den();
        for (std::size_t i = cyc.size(); i-- > 1;) {
          const int node = cyc[i];
          const auto& e = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(node)])];
          lambda[static_cast<std::size_t>(node)] = mean;
          value_s[static_cast<std::size_t>(node)] =
              static_cast<__int128>(q) * e.weight - p + value_s[static_cast<std::size_t>(e.dst)];
          evaluated[static_cast<std::size_t>(node)] = 1;
        }
      }
      // Nodes on the chain before reaching `v` inherit v's cycle data; their
      // scaled values share the inherited lambda's denominator.
      for (std::size_t i = chain.size(); i-- > 0;) {
        const int node = chain[i];
        if (evaluated[static_cast<std::size_t>(node)]) continue;
        const auto& e = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(node)])];
        const Rational lam = lambda[static_cast<std::size_t>(e.dst)];
        lambda[static_cast<std::size_t>(node)] = lam;
        value_s[static_cast<std::size_t>(node)] =
            static_cast<__int128>(lam.den()) * e.weight - lam.num() +
            value_s[static_cast<std::size_t>(e.dst)];
        evaluated[static_cast<std::size_t>(node)] = 1;
      }
      ++round;
    }
  };

  const long max_iterations = 1000L * n + 1000L;
  bool converged = false;
  long iters_used = 0;
  for (long iter = 0; iter < max_iterations; ++iter) {
    iters_used = iter + 1;
    evaluate();
    ++rounds;
    bool improved = false;
    // Phase 1: switch to a successor whose policy cycle has a smaller mean.
    for (int v = 0; v < n; ++v) {
      int best = policy[static_cast<std::size_t>(v)];
      Rational best_lambda =
          lambda[static_cast<std::size_t>(local.edges[static_cast<std::size_t>(best)].dst)];
      for (const int e : local.out[static_cast<std::size_t>(v)]) {
        const Rational cand = lambda[static_cast<std::size_t>(local.edges[static_cast<std::size_t>(e)].dst)];
        if (cand < best_lambda) {
          best = e;
          best_lambda = cand;
        }
      }
      if (best != policy[static_cast<std::size_t>(v)]) {
        policy[static_cast<std::size_t>(v)] = best;
        improved = true;
      }
    }
    if (improved) continue;
    // Phase 2: same-lambda value improvement. Restricting candidates to
    // successors with an identical lambda means every compared value shares
    // one denominator, so the scaled integers compare directly.
    for (int v = 0; v < n; ++v) {
      const Rational lam = lambda[static_cast<std::size_t>(v)];
      const std::int64_t p = lam.num();
      const std::int64_t q = lam.den();
      int best = policy[static_cast<std::size_t>(v)];
      const auto reduced = [&](int e) {
        const auto& edge = local.edges[static_cast<std::size_t>(e)];
        return static_cast<__int128>(q) * edge.weight - p +
               value_s[static_cast<std::size_t>(edge.dst)];
      };
      __int128 best_value = reduced(best);
      for (const int e : local.out[static_cast<std::size_t>(v)]) {
        const auto& edge = local.edges[static_cast<std::size_t>(e)];
        if (lambda[static_cast<std::size_t>(edge.dst)] != lam) continue;
        const __int128 cand = reduced(e);
        if (cand < best_value) {
          best = e;
          best_value = cand;
        }
      }
      if (best_value < value_s[static_cast<std::size_t>(v)]) {
        policy[static_cast<std::size_t>(v)] = best;
        improved = true;
      }
    }
    if (!improved) {
      converged = true;
      break;
    }
  }
  if (std::getenv("LID_MCM_DEBUG") != nullptr) {
    std::fprintf(stderr, "[mcm] scc n=%d e=%zu rounds=%ld converged=%d t=%.3fs\n", n,
                 local.edges.size(), iters_used, converged ? 1 : 0,
                 static_cast<double>(std::clock()) / CLOCKS_PER_SEC);
  }
  if (!converged) {
    // Degenerate tie structures can make multichain policy iteration cycle;
    // fall back to an always-exact mean with a tight-subgraph cycle
    // extraction (Bellman-Ford potentials; edges tight at the optimum form a
    // subgraph that must contain a critical cycle).
    return exact_fallback_cycle(local, sc.cycle);
  }

  // Extract the critical policy cycle: start from a node with minimal lambda.
  int start = 0;
  for (int v = 1; v < n; ++v) {
    if (lambda[static_cast<std::size_t>(v)] < lambda[static_cast<std::size_t>(start)]) start = v;
  }
  // Walk the policy until a node repeats; then emit the cycle portion.
  sc.seen_at.assign(ns, -1);
  auto& seen_at = sc.seen_at;
  auto& walk = sc.walk;
  walk.clear();
  int v = start;
  while (seen_at[static_cast<std::size_t>(v)] == -1) {
    seen_at[static_cast<std::size_t>(v)] = static_cast<int>(walk.size());
    walk.push_back(v);
    v = local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(v)])].dst;
  }
  sc.cycle.clear();
  for (std::size_t i = static_cast<std::size_t>(seen_at[static_cast<std::size_t>(v)]);
       i < walk.size(); ++i) {
    sc.cycle.push_back(
        local.edges[static_cast<std::size_t>(policy[static_cast<std::size_t>(walk[i])])].place);
  }
  return lambda[static_cast<std::size_t>(v)];
}

/// True when `s` are valid scaled potentials for bound p/q on this SCC:
/// q*w(e) - p + s[dst] - s[src] >= 0 for every local edge. All arithmetic in
/// 128 bits so adversarial token counts cannot overflow the validation.
bool potentials_valid(const LocalScc& local, std::int64_t p, std::int64_t q,
                      const std::vector<std::int64_t>& s) {
  for (const auto& e : local.edges) {
    const __int128 slack = static_cast<__int128>(q) * e.weight - p +
                           s[static_cast<std::size_t>(e.dst)] -
                           s[static_cast<std::size_t>(e.src)];
    if (slack < 0) return false;
  }
  return true;
}

/// Exact potential fallback: Bellman-Ford shortest paths from a virtual
/// source over integer reduced costs c(e) = q*w(e) - p. Every cycle of the
/// SCC has nonnegative total reduced cost (its mean is >= p/q), so the
/// distances stabilize within n passes; s = -dist satisfies the potential
/// inequality by the relaxation fixpoint.
void bellman_ford_potentials(const LocalScc& local, std::int64_t p, std::int64_t q,
                             std::vector<std::int64_t>& s) {
  const auto n = static_cast<std::size_t>(local.n);
  std::vector<__int128> dist(n, 0);
  for (int pass = 0; pass < local.n; ++pass) {
    bool changed = false;
    for (const auto& e : local.edges) {
      const __int128 cand = dist[static_cast<std::size_t>(e.src)] +
                            static_cast<__int128>(q) * e.weight - p;
      if (cand < dist[static_cast<std::size_t>(e.dst)]) {
        dist[static_cast<std::size_t>(e.dst)] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  s.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const __int128 val = -dist[v];
    LID_ASSERT(val >= std::numeric_limits<std::int64_t>::min() &&
                   val <= std::numeric_limits<std::int64_t>::max(),
               "bellman_ford_potentials: potential exceeds int64");
    s[v] = static_cast<std::int64_t>(val);
  }
}

template <typename PerScc>
void for_each_cyclic_scc(const MarkedGraph& g, PerScc&& per_scc) {
  const graph::SccPartition part = graph::scc(g.structure());
  for (int c = 0; c < part.count; ++c) {
    if (!part.is_cyclic(c, g.structure())) continue;
    per_scc(make_local(g, part, c));
  }
}

/// Cheap structural fingerprint: transition/place counts plus every place's
/// endpoints. Two graphs with equal fingerprints are treated as structurally
/// identical by the workspace (marking is deliberately excluded).
std::uint64_t structure_fingerprint(const MarkedGraph& g) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;  // FNV-1a prime
  };
  mix(static_cast<std::uint64_t>(g.num_transitions()));
  mix(static_cast<std::uint64_t>(g.num_places()));
  const graph::Digraph& s = g.structure();
  for (std::size_t p = 0; p < g.num_places(); ++p) {
    const graph::Edge& e = s.edge(static_cast<EdgeId>(p));
    mix(static_cast<std::uint64_t>(e.src));
    mix(static_cast<std::uint64_t>(e.dst));
  }
  return h;
}

}  // namespace

struct WorkspaceImpl {
  bool valid = false;
  std::uint64_t fingerprint = 0;
  std::vector<LocalScc> locals;              // cyclic SCCs, in scc() order
  std::vector<std::vector<int>> policies;    // last policy per local SCC
  HowardScratch scratch;
  MeanCycle mst_cycle;  // scratch for mst_howard so it allocates nothing warm
  WorkspaceStats stats;

  /// Points the cached views at `g`: true when the previous structure matched
  /// and only edge weights needed refreshing, false after a full rebuild.
  bool prepare(const MarkedGraph& g) {
    const std::uint64_t fp = structure_fingerprint(g);
    if (valid && fp == fingerprint) {
      for (LocalScc& local : locals) {
        for (LocalScc::LocalEdge& e : local.edges) e.weight = g.tokens(e.place);
      }
      return true;
    }
    locals.clear();
    policies.clear();
    const graph::SccPartition part = graph::scc(g.structure());
    for (int c = 0; c < part.count; ++c) {
      if (!part.is_cyclic(c, g.structure())) continue;
      locals.push_back(make_local(g, part, c));
    }
    policies.resize(locals.size());
    fingerprint = fp;
    valid = true;
    return false;
  }
};

Workspace::Workspace() : impl_(std::make_unique<WorkspaceImpl>()) {}
Workspace::~Workspace() = default;
Workspace::Workspace(Workspace&&) noexcept = default;
Workspace& Workspace::operator=(Workspace&&) noexcept = default;

const WorkspaceStats& Workspace::stats() const { return impl_->stats; }

bool min_cycle_mean_howard(const MarkedGraph& g, Workspace& ws, MeanCycle& out) {
  WorkspaceImpl& im = *ws.impl_;
  const bool reused = im.prepare(g);
  out.cycle.clear();
  bool found = false;
  for (std::size_t i = 0; i < im.locals.size(); ++i) {
    std::vector<int>& policy = im.policies[i];
    const bool warm =
        reused && policy.size() == static_cast<std::size_t>(im.locals[i].n);
    if (!warm) policy.clear();
    (warm ? im.stats.warm_restarts : im.stats.cold_starts) += 1;
    const Rational mean =
        howard_on_scc(im.locals[i], policy, im.scratch, im.stats.improvement_rounds);
    if (!found || mean < out.mean) {
      out.mean = mean;
      std::swap(out.cycle, im.scratch.cycle);
      found = true;
    }
  }
  return found;
}

util::Rational mst_howard(const MarkedGraph& g, Workspace& ws) {
  MeanCycle& mc = ws.impl_->mst_cycle;
  if (!min_cycle_mean_howard(g, ws, mc)) return Rational(1);  // acyclic
  const Rational theta = Rational::min(Rational(1), mc.mean);
  LID_ENSURE(theta.num() != 0, "mst: token-free cycle (deadlocked marked graph)");
  return theta;
}

McmEvidence mcm_evidence(const MarkedGraph& g) {
  McmEvidence ev;
  const graph::SccPartition part = graph::scc(g.structure());
  ev.component = part.comp_of;
  ev.component_cyclic.assign(static_cast<std::size_t>(part.count), 0);
  ev.lambda.assign(static_cast<std::size_t>(part.count), Rational(1));
  ev.potential.assign(g.num_transitions(), 0);

  HowardScratch sc;
  std::int64_t rounds = 0;
  bool found = false;
  MeanCycle best;
  for (int c = 0; c < part.count; ++c) {
    if (!part.is_cyclic(c, g.structure())) continue;
    ev.component_cyclic[static_cast<std::size_t>(c)] = 1;
    const LocalScc local = make_local(g, part, c);
    std::vector<int> policy;
    const Rational mean = howard_on_scc(local, policy, sc, rounds);
    ev.lambda[static_cast<std::size_t>(c)] = mean;

    // Candidate potentials from Howard's converged value vector (at
    // convergence lambda is uniform across the SCC, so every scaled value
    // already carries the denominator q; the exact fallback leaves stale
    // values behind, caught by the uniformity test), validated in one O(E)
    // pass; Bellman-Ford covers the rest exactly.
    const std::int64_t p = mean.num();
    const std::int64_t q = mean.den();
    std::vector<std::int64_t> s(static_cast<std::size_t>(local.n), 0);
    bool ok = sc.lambda.size() >= static_cast<std::size_t>(local.n) &&
              sc.value_s.size() >= static_cast<std::size_t>(local.n);
    for (int v = 0; ok && v < local.n; ++v) {
      const __int128 val = sc.value_s[static_cast<std::size_t>(v)];
      if (sc.lambda[static_cast<std::size_t>(v)] != mean ||
          val < std::numeric_limits<std::int64_t>::min() ||
          val > std::numeric_limits<std::int64_t>::max()) {
        ok = false;
        break;
      }
      s[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(val);
    }
    if (ok) ok = potentials_valid(local, p, q, s);
    if (!ok) {
      bellman_ford_potentials(local, p, q, s);
      LID_ASSERT(potentials_valid(local, p, q, s),
                 "mcm_evidence: fallback potentials invalid");
    }
    const auto& members = part.members[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < members.size(); ++i) {
      ev.potential[static_cast<std::size_t>(members[i])] = s[i];
    }

    if (!found || mean < best.mean) {
      best.mean = mean;
      best.cycle = sc.cycle;
      found = true;
    }
  }
  if (found) ev.critical = std::move(best);
  return ev;
}

std::optional<Rational> min_cycle_mean_karp(const MarkedGraph& g) {
  std::optional<Rational> best;
  for_each_cyclic_scc(g, [&](const LocalScc& local) {
    const Rational mean = karp_on_scc(local);
    if (!best || mean < *best) best = mean;
  });
  return best;
}

std::optional<MeanCycle> min_cycle_mean_howard(const MarkedGraph& g) {
  // One-shot path: a throwaway workspace still pools scratch + the cycle
  // buffer across the graph's SCCs instead of reallocating per component.
  Workspace ws;
  MeanCycle out;
  if (!min_cycle_mean_howard(g, ws, out)) return std::nullopt;
  return out;
}

Rational cycle_time(const MarkedGraph& g) {
  LID_ENSURE(graph::is_strongly_connected(g.structure()), "cycle_time: graph must be strongly connected");
  const std::optional<MeanCycle> mc = min_cycle_mean_howard(g);
  LID_ENSURE(mc.has_value(), "cycle_time: graph has no cycle");
  LID_ENSURE(mc->mean.num() != 0, "cycle_time: token-free cycle makes the cycle time infinite");
  return Rational(1) / mc->mean;
}

Rational mst_allowing_deadlock(const MarkedGraph& g) {
  // Howard, not Karp: Karp's per-SCC walk table is O(V^2) memory, which is
  // prohibitive on the single giant SCC every doubled graph d[G] collapses
  // into (the backward places make d[G] symmetric). Karp stays available via
  // min_cycle_mean_karp as an independent small-instance cross-check.
  const std::optional<MeanCycle> mc = min_cycle_mean_howard(g);
  if (!mc) return Rational(1);  // acyclic
  return Rational::min(Rational(1), mc->mean);
}

Rational mst(const MarkedGraph& g) {
  const Rational theta = mst_allowing_deadlock(g);
  LID_ENSURE(theta.num() != 0, "mst: token-free cycle (deadlocked marked graph)");
  return theta;
}

}  // namespace lid::mg
