#include "mg/analysis.hpp"

#include <limits>
#include <queue>

#include "graph/cycles.hpp"

namespace lid::mg {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// Minimum-token path weight from `from` to `to` (sum of place tokens along
/// the path), or kInf when unreachable. Dijkstra: token counts are >= 0.
std::int64_t min_token_path(const MarkedGraph& g, TransitionId from, TransitionId to) {
  const graph::Digraph& s = g.structure();
  std::vector<std::int64_t> dist(g.num_transitions(), kInf);
  using Entry = std::pair<std::int64_t, TransitionId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(from)] = 0;
  heap.emplace(0, from);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[static_cast<std::size_t>(v)]) continue;
    if (v == to) return d;
    for (const PlaceId p : s.out_edges(v)) {
      const TransitionId w = g.consumer(p);
      const std::int64_t nd = d + g.tokens(p);
      if (nd < dist[static_cast<std::size_t>(w)]) {
        dist[static_cast<std::size_t>(w)] = nd;
        heap.emplace(nd, w);
      }
    }
  }
  return dist[static_cast<std::size_t>(to)];
}

}  // namespace

bool is_live(const MarkedGraph& g) {
  // Live iff no token-free cycle, i.e. the zero-token subgraph is acyclic —
  // one O(E) DFS, never an elementary-cycle enumeration.
  return graph::find_cycle(g.structure(),
                           [&](graph::EdgeId place) { return g.tokens(place) == 0; })
      .empty();
}

std::optional<std::int64_t> place_bound(const MarkedGraph& g, PlaceId p) {
  // min over cycles through p of M0(cycle) = tokens(p) + min-token path from
  // p's consumer back to p's producer.
  const std::int64_t back = min_token_path(g, g.consumer(p), g.producer(p));
  if (back == kInf) return std::nullopt;  // p lies on no cycle
  return g.tokens(p) + back;
}

std::vector<std::optional<std::int64_t>> place_bounds(const MarkedGraph& g) {
  std::vector<std::optional<std::int64_t>> bounds;
  bounds.reserve(g.num_places());
  for (PlaceId p = 0; p < static_cast<PlaceId>(g.num_places()); ++p) {
    bounds.push_back(place_bound(g, p));
  }
  return bounds;
}

bool is_bounded(const MarkedGraph& g) {
  for (PlaceId p = 0; p < static_cast<PlaceId>(g.num_places()); ++p) {
    if (!place_bound(g, p).has_value()) return false;
  }
  return true;
}

bool is_reachable_marking(const MarkedGraph& g, const std::vector<std::int64_t>& marking) {
  LID_ENSURE(marking.size() == g.num_places(), "is_reachable_marking: marking size mismatch");
  LID_ENSURE(is_live(g), "is_reachable_marking: the theorem requires a live marked graph");
  for (const std::int64_t tokens : marking) {
    if (tokens < 0) return false;
  }
  // M reachable  <=>  M = M0 + C·σ for some firing-count vector σ, i.e. the
  // difference M - M0 is a "tension": there is a node potential σ with
  // M(p) - M0(p) = σ(producer(p)) - σ(consumer(p)) for every place. Assign
  // potentials by BFS over the underlying undirected structure and verify
  // every place (non-tree places close consistency constraints — exactly the
  // cycle-invariance condition).
  const graph::Digraph& s = g.structure();
  const std::size_t n = g.num_transitions();
  std::vector<std::int64_t> sigma(n, 0);
  std::vector<char> visited(n, 0);
  for (TransitionId root = 0; root < static_cast<TransitionId>(n); ++root) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    visited[static_cast<std::size_t>(root)] = 1;
    std::vector<TransitionId> queue{root};
    while (!queue.empty()) {
      const TransitionId v = queue.back();
      queue.pop_back();
      const auto expand = [&](PlaceId p, bool outgoing) {
        const std::int64_t delta =
            marking[static_cast<std::size_t>(p)] - g.tokens(p);
        const TransitionId other = outgoing ? g.consumer(p) : g.producer(p);
        // delta = σ(producer) - σ(consumer).
        const std::int64_t implied =
            outgoing ? sigma[static_cast<std::size_t>(v)] - delta
                     : sigma[static_cast<std::size_t>(v)] + delta;
        if (!visited[static_cast<std::size_t>(other)]) {
          visited[static_cast<std::size_t>(other)] = 1;
          sigma[static_cast<std::size_t>(other)] = implied;
          queue.push_back(other);
          return true;
        }
        return sigma[static_cast<std::size_t>(other)] == implied;
      };
      for (const PlaceId p : s.out_edges(v)) {
        if (!expand(p, /*outgoing=*/true)) return false;
      }
      for (const PlaceId p : s.in_edges(v)) {
        if (!expand(p, /*outgoing=*/false)) return false;
      }
    }
  }
  return true;
}

}  // namespace lid::mg
