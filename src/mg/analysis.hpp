// Structural analysis of marked graphs beyond throughput: liveness,
// boundedness, and exact per-place token bounds.
//
// Classic marked-graph theory (Commoner et al. [22]): a marked graph is
// *live* iff every cycle carries at least one token, and a place of a live,
// strongly connected marked graph can never hold more tokens than the
// minimum of M0(c) over the cycles c through it (token counts on cycles are
// invariant, and the bound is reached). For a LIS this bound answers a very
// practical question: how many items can actually pile up in each lumped
// channel place — i.e. how much physical storage an implementation of the
// Fig. 4 abstraction must provision.
#pragma once

#include <optional>
#include <vector>

#include "mg/marked_graph.hpp"

namespace lid::mg {

/// True iff every cycle carries at least one token (no reachable deadlock).
bool is_live(const MarkedGraph& g);

/// Exact upper bound on the tokens place p can ever hold, for places on at
/// least one cycle of a live graph: min over cycles through p of the cycle's
/// initial token count. Places on no cycle are unbounded (nullopt) — in a
/// LIS this happens only in ideal (backpressure-free) expansions.
std::optional<std::int64_t> place_bound(const MarkedGraph& g, PlaceId p);

/// All place bounds at once (one Dijkstra per place; see place_bound).
std::vector<std::optional<std::int64_t>> place_bounds(const MarkedGraph& g);

/// True when every place is bounded (g's every place lies on a cycle).
bool is_bounded(const MarkedGraph& g);

/// Reachability of a marking in a LIVE marked graph (classic theorem,
/// Commoner/Murata): M is reachable from the initial marking iff M is
/// nonnegative and every cycle carries the same token count under M as under
/// M0 (cycle counts are invariant, and for live marked graphs the invariant
/// is complete). Requires `marking.size() == g.num_places()` and a live `g`;
/// throws std::invalid_argument otherwise.
bool is_reachable_marking(const MarkedGraph& g, const std::vector<std::int64_t>& marking);

}  // namespace lid::mg
