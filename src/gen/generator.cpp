#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace lid::gen {
namespace {

using lis::ChannelId;
using lis::CoreId;
using lis::LisGraph;
using util::Rng;

/// Random partition of `vertices` cores into `sccs` groups, each of size at
/// least min(2, floor(vertices / sccs)) so every group can host a cycle when
/// the budget allows it.
std::vector<std::vector<CoreId>> partition_vertices(int vertices, int sccs, Rng& rng) {
  const int base = std::max(1, std::min(2, vertices / sccs));
  std::vector<int> sizes(static_cast<std::size_t>(sccs), base);
  int remaining = vertices - base * sccs;
  LID_ENSURE(remaining >= 0, "generator: vertices must be at least the SCC count");
  while (remaining > 0) {
    sizes[rng.uniform_index(sizes.size())] += 1;
    --remaining;
  }
  std::vector<CoreId> ids(static_cast<std::size_t>(vertices));
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  std::vector<std::vector<CoreId>> groups;
  std::size_t next = 0;
  for (const int size : sizes) {
    groups.emplace_back(ids.begin() + static_cast<std::ptrdiff_t>(next),
                        ids.begin() + static_cast<std::ptrdiff_t>(next + size));
    next += static_cast<std::size_t>(size);
  }
  return groups;
}

}  // namespace

LisGraph generate(const GeneratorParams& params, Rng& rng) {
  LID_ENSURE(params.vertices >= 1, "generator: need at least one vertex");
  LID_ENSURE(params.sccs >= 1 && params.sccs <= params.vertices,
             "generator: SCC count must be in [1, vertices]");
  LID_ENSURE(params.min_cycles >= 0, "generator: negative cycle count");
  LID_ENSURE(params.relay_stations >= 0, "generator: negative relay-station count");
  LID_ENSURE(params.queue_capacity >= 1, "generator: queue capacity must be at least 1");

  LisGraph lis;
  for (int v = 0; v < params.vertices; ++v) lis.add_core();

  // Step 1: partition into SCCs.
  const std::vector<std::vector<CoreId>> groups =
      partition_vertices(params.vertices, params.sccs, rng);

  // Step 2: per SCC a Hamiltonian cycle plus `min_cycles` chords.
  std::set<std::pair<CoreId, CoreId>> used;
  std::vector<ChannelId> intra_channels;
  for (const auto& members : groups) {
    const std::size_t n = members.size();
    if (n >= 2) {
      for (std::size_t i = 0; i < n; ++i) {
        const CoreId u = members[i];
        const CoreId v = members[(i + 1) % n];
        intra_channels.push_back(lis.add_channel(u, v, 0, params.queue_capacity));
        used.emplace(u, v);
      }
    }
    // Chords: (u, v) pairs not yet used; each adds at least one new cycle.
    const std::size_t max_chords = n >= 2 ? n * (n - 1) - n : 0;
    int to_add = std::min<int>(params.min_cycles, static_cast<int>(max_chords));
    int attempts = 0;
    while (to_add > 0 && attempts < 1000) {
      ++attempts;
      const CoreId u = rng.pick(members);
      const CoreId v = rng.pick(members);
      if (u == v || used.count({u, v}) > 0) continue;
      intra_channels.push_back(lis.add_channel(u, v, 0, params.queue_capacity));
      used.emplace(u, v);
      --to_add;
    }
  }

  // Step 3: connected acyclic auxiliary graph over the SCCs. A random
  // topological order plus a random arborescence guarantees both; extra
  // forward edges create reconvergent inter-SCC paths when allowed.
  std::vector<int> order(groups.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<std::pair<int, int>> aux_edges;  // (scc index, scc index)
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t j = rng.uniform_index(i);
    aux_edges.emplace_back(order[j], order[i]);
  }
  if (params.reconvergent && groups.size() >= 2) {
    // Matches the paper's observed inter-SCC edge counts (~s/3 extra edges
    // beyond the spanning arborescence; Table IV reports 12 inter-SCC edges
    // for s = 10 and ~24.7 for s = 20).
    const int extra = static_cast<int>(std::lround(0.3 * static_cast<double>(groups.size())));
    std::set<std::pair<int, int>> aux_used(aux_edges.begin(), aux_edges.end());
    int attempts = 0;
    int added = 0;
    while (added < extra && attempts < 1000) {
      ++attempts;
      std::size_t a = rng.uniform_index(order.size());
      std::size_t b = rng.uniform_index(order.size());
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      const std::pair<int, int> e{order[a], order[b]};
      if (aux_used.count(e) > 0) continue;
      aux_used.insert(e);
      aux_edges.push_back(e);
      ++added;
    }
  }

  // Step 4: one channel per auxiliary edge between random member vertices.
  std::vector<ChannelId> inter_channels;
  for (const auto& [s1, s2] : aux_edges) {
    const CoreId u = rng.pick(groups[static_cast<std::size_t>(s1)]);
    const CoreId v = rng.pick(groups[static_cast<std::size_t>(s2)]);
    inter_channels.push_back(lis.add_channel(u, v, 0, params.queue_capacity));
  }

  // Step 5: distribute relay stations under the chosen policy.
  const std::vector<ChannelId>* eligible = nullptr;
  std::vector<ChannelId> all_channels;
  if (params.policy == RsPolicy::kScc) {
    eligible = &inter_channels;
  } else {
    all_channels = intra_channels;
    all_channels.insert(all_channels.end(), inter_channels.begin(), inter_channels.end());
    eligible = &all_channels;
  }
  if (params.relay_stations > 0) {
    LID_ENSURE(!eligible->empty(), "generator: no eligible channel for relay stations");
    for (int r = 0; r < params.relay_stations; ++r) {
      const ChannelId ch = rng.pick(*eligible);
      lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
    }
  }
  return lis;
}

LisGraph generate_tree(int vertices, int relay_stations, Rng& rng) {
  LID_ENSURE(vertices >= 1, "generate_tree: need at least one vertex");
  LID_ENSURE(relay_stations >= 0, "generate_tree: negative relay-station count");
  LisGraph lis;
  lis.add_core();
  for (int v = 1; v < vertices; ++v) {
    lis.add_core();
    const auto parent = static_cast<CoreId>(rng.uniform_index(static_cast<std::size_t>(v)));
    lis.add_channel(parent, static_cast<CoreId>(v));
  }
  for (int r = 0; r < relay_stations && lis.num_channels() > 0; ++r) {
    const auto ch = static_cast<ChannelId>(rng.uniform_index(lis.num_channels()));
    lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
  }
  return lis;
}

LisGraph generate_cactus(int cycles, int max_cycle_len, int relay_stations, Rng& rng) {
  LID_ENSURE(cycles >= 1, "generate_cactus: need at least one cycle");
  LID_ENSURE(max_cycle_len >= 2, "generate_cactus: cycles need length at least 2");
  LID_ENSURE(relay_stations >= 0, "generate_cactus: negative relay-station count");
  LisGraph lis;
  // Seed cycle.
  const int first_len = rng.uniform_int(2, max_cycle_len);
  std::vector<CoreId> nodes;
  for (int i = 0; i < first_len; ++i) nodes.push_back(lis.add_core());
  for (int i = 0; i < first_len; ++i) {
    lis.add_channel(nodes[static_cast<std::size_t>(i)],
                    nodes[static_cast<std::size_t>((i + 1) % first_len)]);
  }
  // Attach further cycles at articulation points.
  for (int c = 1; c < cycles; ++c) {
    const CoreId anchor = rng.pick(nodes);
    const int len = rng.uniform_int(2, max_cycle_len);
    CoreId prev = anchor;
    for (int i = 1; i < len; ++i) {
      const CoreId fresh = lis.add_core();
      nodes.push_back(fresh);
      lis.add_channel(prev, fresh);
      prev = fresh;
    }
    lis.add_channel(prev, anchor);
  }
  for (int r = 0; r < relay_stations; ++r) {
    const auto ch = static_cast<ChannelId>(rng.uniform_index(lis.num_channels()));
    lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
  }
  return lis;
}

LisGraph generate_mesh(int rows, int cols, int relay_stations, Rng& rng) {
  LID_ENSURE(rows >= 1 && cols >= 1, "generate_mesh: dimensions must be positive");
  LID_ENSURE(relay_stations >= 0, "generate_mesh: negative relay-station count");
  LisGraph lis;
  const auto node = [&](int r, int c) { return static_cast<CoreId>(r * cols + c); };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lis.add_core("n" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        lis.add_channel(node(r, c), node(r, c + 1));
        lis.add_channel(node(r, c + 1), node(r, c));
      }
      if (r + 1 < rows) {
        lis.add_channel(node(r, c), node(r + 1, c));
        lis.add_channel(node(r + 1, c), node(r, c));
      }
    }
  }
  for (int i = 0; i < relay_stations && lis.num_channels() > 0; ++i) {
    const auto ch = static_cast<ChannelId>(rng.uniform_index(lis.num_channels()));
    lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
  }
  return lis;
}

LisGraph generate_torus(int rows, int cols, int relay_stations, Rng& rng) {
  LID_ENSURE(rows >= 2 && cols >= 2, "generate_torus: dimensions must be at least 2");
  LID_ENSURE(relay_stations >= 0, "generate_torus: negative relay-station count");
  LisGraph lis;
  const auto node = [&](int r, int c) {
    return static_cast<CoreId>(((r + rows) % rows) * cols + (c + cols) % cols);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lis.add_core("n" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      lis.add_channel(node(r, c), node(r, c + 1));  // east
      lis.add_channel(node(r, c), node(r + 1, c));  // south
    }
  }
  for (int i = 0; i < relay_stations; ++i) {
    const auto ch = static_cast<ChannelId>(rng.uniform_index(lis.num_channels()));
    lis.set_relay_stations(ch, lis.channel(ch).relay_stations + 1);
  }
  return lis;
}

}  // namespace lid::gen
