// Synthetic LIS generator (Sec. VIII).
//
// Generates random LIS netlists exactly per the paper's procedure:
//   1. partition v vertices into s SCCs,
//   2. per SCC: a Hamiltonian cycle over its vertices plus c extra chords
//      (guaranteeing at least c additional cycles),
//   3. a random connected, acyclic auxiliary graph over the SCCs
//      (reconvergent inter-SCC paths allowed iff rp),
//   4. one channel per auxiliary edge between random member vertices,
//   5. rs relay stations placed randomly under the chosen policy:
//      `any` channel, or only `scc`-connecting channels.
//
// The generator also provides the restricted topology classes of Table II
// (trees and cactus SCC networks) used by the property-test suites.
#pragma once

#include <cstdint>

#include "lis/lis_graph.hpp"
#include "util/rng.hpp"

namespace lid::gen {

/// Where relay stations may be inserted (Sec. VIII step 5).
enum class RsPolicy {
  kAny,  ///< any channel
  kScc,  ///< only channels connecting two different SCCs
};

/// Generator parameters (the paper's v, s, c, rs, rp inputs).
struct GeneratorParams {
  int vertices = 50;        ///< v — total cores
  int sccs = 5;             ///< s — number of SCCs
  int min_cycles = 5;       ///< c — extra chords (and thus cycles) per SCC
  int relay_stations = 10;  ///< rs — relay stations to distribute
  bool reconvergent = true; ///< rp — allow reconvergent inter-SCC paths
  RsPolicy policy = RsPolicy::kScc;
  int queue_capacity = 1;   ///< initial uniform queue capacity
};

/// Generates a random LIS per the paper's procedure.
lis::LisGraph generate(const GeneratorParams& params, util::Rng& rng);

/// Generates a random out-tree (Table II's easiest class) with `vertices`
/// cores and `relay_stations` placed on random channels.
lis::LisGraph generate_tree(int vertices, int relay_stations, util::Rng& rng);

/// Generates a random cactus SCC: `cycles` directed cycles of length in
/// [2, max_cycle_len] glued at articulation points, with `relay_stations`
/// placed on random channels. Never has reconvergent paths.
lis::LisGraph generate_cactus(int cycles, int max_cycle_len, int relay_stations,
                              util::Rng& rng);

/// Generates a rows × cols 2-D mesh with bidirectional links between
/// orthogonal neighbours — the canonical network-on-chip substrate that
/// latency-insensitive channels are used for (e.g. xpipes [24]). Any mesh
/// with both dimensions >= 2 has reconvergent paths (the faces), so it falls
/// in Table II's general class. `relay_stations` are spread over random
/// links (modeling links longer than one clock period after placement).
lis::LisGraph generate_mesh(int rows, int cols, int relay_stations, util::Rng& rng);

/// Generates a rows × cols unidirectional torus (east and south links with
/// wrap-around) — a standard NoC topology whose row/column rings and
/// abundant reconvergent paths make it a rich queue-sizing testbed, unlike
/// the bidirectional mesh whose 2-cycles dominate every other loop.
lis::LisGraph generate_torus(int rows, int cols, int relay_stations, util::Rng& rng);

}  // namespace lid::gen
