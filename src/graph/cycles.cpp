#include "graph/cycles.hpp"

#include <algorithm>

#include "graph/scc.hpp"

namespace lid::graph {
namespace {

/// Johnson's elementary-circuit enumeration, extended to multigraphs: cycles
/// are vertex-elementary, and parallel edges produce one cycle per distinct
/// edge sequence. Each cycle is discovered exactly once, in the round whose
/// start vertex is the cycle's least vertex.
class JohnsonEnumerator {
 public:
  JohnsonEnumerator(const Digraph& g, const std::function<bool(const Cycle&)>& on_cycle,
                    const std::function<bool(EdgeId)>& edge_filter,
                    const util::CancelToken& cancel)
      : g_(g), on_cycle_(on_cycle), edge_filter_(edge_filter), cancel_(cancel) {}

  /// Returns true when enumeration ran to completion.
  bool run() {
    const std::size_t n = g_.num_nodes();
    blocked_.assign(n, 0);
    block_map_.assign(n, {});
    in_round_.assign(n, 0);
    // Size the hot per-round buffers up front: the DFS stack and the round's
    // node list never exceed n entries, and reserving here keeps circuit()'s
    // push/pop cycle reallocation-free for the whole enumeration.
    round_nodes_.reserve(n);
    edge_stack_.reserve(n);
    unblock_work_.reserve(n);

    for (NodeId s = 0; s < static_cast<NodeId>(n) && !stopped_; ++s) {
      if (cancel_.can_cancel() && cancel_.cancelled()) {
        stopped_ = true;
        cancelled_ = true;
        break;
      }
      mark_round_component(s);
      if (!in_round_[static_cast<std::size_t>(s)]) continue;
      for (const NodeId v : round_nodes_) {
        blocked_[static_cast<std::size_t>(v)] = 0;
        block_map_[static_cast<std::size_t>(v)].clear();
      }
      start_ = s;
      circuit(s);
    }
    return !stopped_;
  }

  /// True when the cancel token (not the callback) ended enumeration.
  [[nodiscard]] bool cancelled() const { return cancelled_; }

 private:
  bool allowed(EdgeId e) const { return !edge_filter_ || edge_filter_(e); }

  /// Marks in_round_ for the SCC containing `s` within the subgraph induced
  /// by vertices >= s (and allowed edges). Also records the marked nodes in
  /// round_nodes_ so flags can be reset cheaply.
  void mark_round_component(NodeId s) {
    for (const NodeId v : round_nodes_) in_round_[static_cast<std::size_t>(v)] = 0;
    round_nodes_.clear();

    // Build the induced subgraph over vertices >= s. Node v of g maps to
    // v - s in the subgraph.
    const auto n = static_cast<NodeId>(g_.num_nodes());
    Digraph sub(static_cast<std::size_t>(n - s));
    bool s_has_relevant_edge = false;
    for (NodeId v = s; v < n; ++v) {
      for (const EdgeId e : g_.out_edges(v)) {
        const NodeId w = g_.edge(e).dst;
        if (w < s || !allowed(e)) continue;
        sub.add_edge(v - s, w - s);
        if (v == s || w == s) s_has_relevant_edge = true;
      }
    }
    if (!s_has_relevant_edge) return;

    const SccPartition part = scc(sub);
    const int cs = part.comp_of[0];  // component of s (node 0 in sub)
    const bool cyclic = part.is_cyclic(cs, sub);
    if (!cyclic) return;
    for (NodeId v = 0; v < static_cast<NodeId>(sub.num_nodes()); ++v) {
      if (part.comp_of[static_cast<std::size_t>(v)] == cs) {
        in_round_[static_cast<std::size_t>(v + s)] = 1;
        round_nodes_.push_back(v + s);
      }
    }
  }

  bool circuit(NodeId v) {
    // Poll the token on a stride: recursion steps are cheap, so checking the
    // clock on each would dominate; a cancelled enumeration still stops
    // within 256 steps.
    if (cancel_.can_cancel() && ++poll_counter_ % 256 == 0 && cancel_.cancelled()) {
      stopped_ = true;
      cancelled_ = true;
    }
    if (stopped_) return false;
    bool found = false;
    blocked_[static_cast<std::size_t>(v)] = 1;
    for (const EdgeId e : g_.out_edges(v)) {
      if (stopped_) break;
      if (!allowed(e)) continue;
      const NodeId w = g_.edge(e).dst;
      if (w < start_ || !in_round_[static_cast<std::size_t>(w)]) continue;
      if (w == start_) {
        Cycle cycle = edge_stack_;
        cycle.push_back(e);
        if (!on_cycle_(cycle)) stopped_ = true;
        found = true;
      } else if (!blocked_[static_cast<std::size_t>(w)]) {
        edge_stack_.push_back(e);
        if (circuit(w)) found = true;
        edge_stack_.pop_back();
      }
    }
    if (found) {
      unblock(v);
    } else {
      // v found no circuit: block it until some successor is unblocked.
      for (const EdgeId e : g_.out_edges(v)) {
        if (!allowed(e)) continue;
        const NodeId w = g_.edge(e).dst;
        if (w < start_ || !in_round_[static_cast<std::size_t>(w)]) continue;
        auto& preds = block_map_[static_cast<std::size_t>(w)];
        if (std::find(preds.begin(), preds.end(), v) == preds.end()) preds.push_back(v);
      }
    }
    return found;
  }

  void unblock(NodeId v) {
    // Iterative unblock cascade; the work stack is a member so the cascade
    // (run once per emitted cycle) never reallocates.
    std::vector<NodeId>& work = unblock_work_;
    work.clear();
    work.push_back(v);
    while (!work.empty()) {
      const NodeId u = work.back();
      work.pop_back();
      if (!blocked_[static_cast<std::size_t>(u)]) continue;
      blocked_[static_cast<std::size_t>(u)] = 0;
      for (const NodeId p : block_map_[static_cast<std::size_t>(u)]) {
        if (blocked_[static_cast<std::size_t>(p)]) work.push_back(p);
      }
      block_map_[static_cast<std::size_t>(u)].clear();
    }
  }

  const Digraph& g_;
  const std::function<bool(const Cycle&)>& on_cycle_;
  const std::function<bool(EdgeId)>& edge_filter_;
  const util::CancelToken& cancel_;

  NodeId start_ = 0;
  bool stopped_ = false;
  bool cancelled_ = false;
  std::uint64_t poll_counter_ = 0;
  std::vector<char> blocked_;
  std::vector<std::vector<NodeId>> block_map_;
  std::vector<char> in_round_;
  std::vector<NodeId> round_nodes_;
  Cycle edge_stack_;
  std::vector<NodeId> unblock_work_;
};

}  // namespace

bool for_each_cycle(const Digraph& g, const std::function<bool(const Cycle&)>& on_cycle,
                    const std::function<bool(EdgeId)>& edge_filter,
                    const util::CancelToken& cancel) {
  LID_ENSURE(static_cast<bool>(on_cycle), "for_each_cycle: callback required");
  JohnsonEnumerator enumerator(g, on_cycle, edge_filter, cancel);
  return enumerator.run();
}

CycleEnumResult enumerate_cycles(const Digraph& g, const CycleEnumOptions& options) {
  CycleEnumResult result;
  // Named std::function (not auto): the enumerator stores a reference to it.
  const std::function<bool(const Cycle&)> collect = [&](const Cycle& c) {
    result.cycles.push_back(c);
    return options.max_cycles == 0 || result.cycles.size() < options.max_cycles;
  };
  JohnsonEnumerator enumerator(g, collect, options.edge_filter, options.cancel);
  const bool complete = enumerator.run();
  result.truncated = !complete;
  result.cancelled = enumerator.cancelled();
  return result;
}

bool has_cycle(const Digraph& g) {
  const SccPartition part = scc(g);
  for (int c = 0; c < part.count; ++c) {
    if (part.is_cyclic(c, g)) return true;
  }
  return false;
}

Cycle find_cycle(const Digraph& g, const std::function<bool(EdgeId)>& edge_filter) {
  const auto n = static_cast<NodeId>(g.num_nodes());
  std::vector<char> color(static_cast<std::size_t>(n), 0);  // 0 new, 1 on path, 2 done
  std::vector<EdgeId> via(static_cast<std::size_t>(n), kInvalidEdge);  // path-entry edge
  struct Frame {
    NodeId node;
    std::size_t next;  // index into out_edges(node)
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (color[static_cast<std::size_t>(root)] != 0) continue;
    color[static_cast<std::size_t>(root)] = 1;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::span<const EdgeId> out = g.out_edges(frame.node);
      if (frame.next == out.size()) {
        color[static_cast<std::size_t>(frame.node)] = 2;
        stack.pop_back();
        continue;
      }
      const EdgeId e = out[frame.next++];
      if (edge_filter && !edge_filter(e)) continue;
      const NodeId w = g.edge(e).dst;
      if (color[static_cast<std::size_t>(w)] == 0) {
        color[static_cast<std::size_t>(w)] = 1;
        via[static_cast<std::size_t>(w)] = e;
        stack.push_back({w, 0});
      } else if (color[static_cast<std::size_t>(w)] == 1) {
        // `e` closes a cycle back to `w`: unwind the path-entry edges.
        Cycle cycle{e};
        for (NodeId v = frame.node; v != w; v = g.edge(via[static_cast<std::size_t>(v)]).src) {
          cycle.push_back(via[static_cast<std::size_t>(v)]);
        }
        std::reverse(cycle.begin(), cycle.end());
        return cycle;
      }
    }
  }
  return {};
}

}  // namespace lid::graph
