// Topology classification for LIS netlists (Table II of the paper).
//
// A group of simple paths is *reconvergent* when they would form a cycle if
// the graph were undirected (Sec. IV). Equivalently: the graph has an
// undirected cycle that is not a directed cycle. The paper proves that two
// topology classes never lose throughput to backpressure with queues fixed at
// size one:
//   * trees (no cycles, no reconvergent paths — the underlying undirected
//     graph is a forest), and
//   * SCCs whose cycles meet only at articulation points (directed cacti),
//     connected by a DAG with no reconvergent paths.
// Everything else is "general" and requires real queue sizing (Sec. V proves
// optimal sizing NP-complete there).
//
// Detection runs on the biconnected components (BCCs) of the underlying
// undirected multigraph: the graph has no reconvergent paths exactly when
// every BCC is either a bridge or a single directed cycle.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace lid::graph {

/// Table II classes, from easiest to hardest.
enum class TopologyClass {
  /// No cycles and no reconvergent paths: backpressure is harmless, q = 1.
  kTree,
  /// One SCC whose cycles meet only at articulation points: q = 1 suffices.
  kCactusScc,
  /// Several cactus SCCs connected by a DAG with no reconvergent paths:
  /// q = 1 still suffices.
  kNetworkOfCactusSccs,
  /// Anything else: fixed queue sizing cannot be guaranteed to work.
  kGeneral,
};

const char* to_string(TopologyClass c);

/// True when the underlying undirected multigraph has no cycle at all
/// (parallel directed edges between the same pair count as a cycle).
bool is_underlying_forest(const Digraph& g);

/// True when the graph has reconvergent paths: some undirected cycle of the
/// underlying multigraph is not a directed cycle of `g`.
bool has_reconvergent_paths(const Digraph& g);

/// True when the subgraph induced by `members` (one SCC of `g`) is a directed
/// cactus, i.e. has no reconvergent paths internally.
bool scc_is_cactus(const Digraph& g, const std::vector<NodeId>& members);

/// Classifies `g` per Table II.
TopologyClass classify(const Digraph& g);

/// Articulation points of the underlying undirected multigraph (vertices
/// whose removal disconnects their connected component). Parallel edges are
/// handled: a doubled edge forms a 2-cycle, so it alone articulates neither
/// endpoint.
std::vector<NodeId> articulation_points(const Digraph& g);

}  // namespace lid::graph
