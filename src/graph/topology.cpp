#include "graph/topology.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/scc.hpp"

namespace lid::graph {
namespace {

/// Undirected view: for every directed edge id we record both endpoints'
/// incidence. A traversal must not re-use the same edge id it arrived by.
struct UndirectedView {
  struct Incidence {
    NodeId other;
    EdgeId via;
  };
  std::vector<std::vector<Incidence>> adj;

  explicit UndirectedView(const Digraph& g) : adj(g.num_nodes()) {
    for (EdgeId e = 0; e < static_cast<EdgeId>(g.num_edges()); ++e) {
      const Edge& edge = g.edge(e);
      if (edge.src == edge.dst) continue;  // self-loops handled separately
      adj[static_cast<std::size_t>(edge.src)].push_back({edge.dst, e});
      adj[static_cast<std::size_t>(edge.dst)].push_back({edge.src, e});
    }
  }
};

/// Hopcroft–Tarjan biconnected components + articulation points, iterative.
struct BccResult {
  /// Each BCC as the set of (directed) edge ids it contains. Self-loops are
  /// excluded (they are trivially directed cycles).
  std::vector<std::vector<EdgeId>> components;
  std::vector<NodeId> articulation;
};

BccResult biconnected_components(const Digraph& g) {
  const UndirectedView view(g);
  const std::size_t n = g.num_nodes();
  BccResult result;

  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> is_articulation(n, 0);
  std::vector<EdgeId> edge_stack;
  int time = 0;

  struct Frame {
    NodeId v;
    EdgeId arrived_via;  // edge used to reach v (kInvalidEdge for roots)
    std::size_t next;    // next incidence index to explore
  };

  for (NodeId root = 0; root < static_cast<NodeId>(n); ++root) {
    if (disc[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> stack;
    stack.push_back({root, kInvalidEdge, 0});
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] = time++;
    int root_children = 0;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      const auto vi = static_cast<std::size_t>(v);
      const auto& inc = view.adj[vi];
      if (frame.next < inc.size()) {
        const auto [w, via] = inc[frame.next++];
        const auto wi = static_cast<std::size_t>(w);
        if (via == frame.arrived_via) continue;  // do not re-use the tree edge
        if (disc[wi] == -1) {
          edge_stack.push_back(via);
          disc[wi] = low[wi] = time++;
          if (v == root) ++root_children;
          stack.push_back({w, via, 0});
        } else if (disc[wi] < disc[vi]) {
          // Back edge to an ancestor (or a parallel edge).
          edge_stack.push_back(via);
          low[vi] = std::min(low[vi], disc[wi]);
        }
        continue;
      }
      // v fully explored; fold into parent.
      const EdgeId arrived_via = frame.arrived_via;
      stack.pop_back();  // invalidates `frame`
      if (stack.empty()) break;
      Frame& parent = stack.back();
      const auto pi = static_cast<std::size_t>(parent.v);
      low[pi] = std::min(low[pi], low[vi]);
      if (low[vi] >= disc[pi]) {
        // parent.v closes a biconnected component ending at `arrived_via`.
        std::vector<EdgeId> comp;
        for (;;) {
          LID_ASSERT(!edge_stack.empty(), "BCC edge stack underflow");
          const EdgeId e = edge_stack.back();
          edge_stack.pop_back();
          comp.push_back(e);
          if (e == arrived_via) break;
        }
        result.components.push_back(std::move(comp));
        if (parent.v != root) is_articulation[pi] = 1;
      }
    }
    if (root_children >= 2) is_articulation[static_cast<std::size_t>(root)] = 1;
  }

  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (is_articulation[static_cast<std::size_t>(v)]) result.articulation.push_back(v);
  }
  return result;
}

/// True when the BCC (given as directed edge ids, ≥2 edges) forms exactly one
/// directed simple cycle.
bool bcc_is_directed_cycle(const Digraph& g, const std::vector<EdgeId>& comp) {
  std::map<NodeId, int> out_count;
  std::map<NodeId, int> in_count;
  for (const EdgeId e : comp) {
    const Edge& edge = g.edge(e);
    ++out_count[edge.src];
    ++in_count[edge.dst];
  }
  if (out_count.size() != comp.size() || in_count.size() != comp.size()) return false;
  for (const auto& [v, c] : out_count) {
    if (c != 1) return false;
    const auto it = in_count.find(v);
    if (it == in_count.end() || it->second != 1) return false;
  }
  // Connectivity within a BCC is guaranteed by construction, and with all
  // in/out degrees equal to one the component is a single directed cycle.
  return true;
}

}  // namespace

const char* to_string(TopologyClass c) {
  switch (c) {
    case TopologyClass::kTree:
      return "tree";
    case TopologyClass::kCactusScc:
      return "cactus-scc";
    case TopologyClass::kNetworkOfCactusSccs:
      return "network-of-cactus-sccs";
    case TopologyClass::kGeneral:
      return "general";
  }
  return "unknown";
}

bool is_underlying_forest(const Digraph& g) {
  for (EdgeId e = 0; e < static_cast<EdgeId>(g.num_edges()); ++e) {
    if (g.edge(e).src == g.edge(e).dst) return false;  // self-loop is a cycle
  }
  const BccResult bcc = biconnected_components(g);
  return std::all_of(bcc.components.begin(), bcc.components.end(),
                     [](const std::vector<EdgeId>& comp) { return comp.size() == 1; });
}

bool has_reconvergent_paths(const Digraph& g) {
  const BccResult bcc = biconnected_components(g);
  for (const auto& comp : bcc.components) {
    if (comp.size() == 1) continue;  // bridge
    if (!bcc_is_directed_cycle(g, comp)) return true;
  }
  return false;
}

bool scc_is_cactus(const Digraph& g, const std::vector<NodeId>& members) {
  LID_ENSURE(!members.empty(), "scc_is_cactus: empty SCC");
  // Build the induced subgraph over `members`.
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < members.size(); ++i) {
    remap[static_cast<std::size_t>(members[i])] = static_cast<NodeId>(i);
  }
  Digraph sub(members.size());
  for (const NodeId v : members) {
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.edge(e).dst;
      if (remap[static_cast<std::size_t>(w)] != kInvalidNode) {
        sub.add_edge(remap[static_cast<std::size_t>(v)], remap[static_cast<std::size_t>(w)]);
      }
    }
  }
  return !has_reconvergent_paths(sub);
}

TopologyClass classify(const Digraph& g) {
  if (is_underlying_forest(g)) return TopologyClass::kTree;
  if (has_reconvergent_paths(g)) return TopologyClass::kGeneral;
  // Every undirected cycle is a directed cycle: cactus SCCs connected by a
  // forest of inter-SCC edges.
  return is_strongly_connected(g) ? TopologyClass::kCactusScc
                                  : TopologyClass::kNetworkOfCactusSccs;
}

std::vector<NodeId> articulation_points(const Digraph& g) {
  return biconnected_components(g).articulation;
}

}  // namespace lid::graph
