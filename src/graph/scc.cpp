#include "graph/scc.hpp"

#include <algorithm>

namespace lid::graph {

bool SccPartition::is_cyclic(int c, const Digraph& g) const {
  LID_ENSURE(c >= 0 && c < count, "component index out of range");
  const auto& nodes = members[static_cast<std::size_t>(c)];
  if (nodes.size() > 1) return true;
  // Single node: cyclic iff it has a self-loop.
  const NodeId v = nodes.front();
  for (const EdgeId e : g.out_edges(v)) {
    if (g.edge(e).dst == v) return true;
  }
  return false;
}

SccPartition scc(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  SccPartition part;
  part.comp_of.assign(n, -1);

  // Iterative Tarjan. `index` and `lowlink` per node; `on_stack` flags.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  int next_index = 0;

  struct Frame {
    NodeId v;
    std::size_t next_out;  // index into out_edges(v)
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < static_cast<NodeId>(n); ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    call_stack.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId v = frame.v;
      const auto outs = g.out_edges(v);
      if (frame.next_out < outs.size()) {
        const NodeId w = g.edge(outs[frame.next_out++]).dst;
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          index[wi] = lowlink[wi] = next_index++;
          stack.push_back(w);
          on_stack[wi] = 1;
          call_stack.push_back({w, 0});
        } else if (on_stack[wi]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)], index[wi]);
        }
        continue;
      }
      // v is fully explored.
      call_stack.pop_back();
      const auto vi = static_cast<std::size_t>(v);
      if (!call_stack.empty()) {
        const auto pi = static_cast<std::size_t>(call_stack.back().v);
        lowlink[pi] = std::min(lowlink[pi], lowlink[vi]);
      }
      if (lowlink[vi] == index[vi]) {
        // v is the root of an SCC; pop it off the node stack.
        std::vector<NodeId> comp;
        for (;;) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          part.comp_of[static_cast<std::size_t>(w)] = part.count;
          comp.push_back(w);
          if (w == v) break;
        }
        std::reverse(comp.begin(), comp.end());
        part.members.push_back(std::move(comp));
        ++part.count;
      }
    }
  }
  return part;
}

Condensation condense(const Digraph& g) {
  Condensation c;
  c.partition = scc(g);
  c.dag = Digraph(static_cast<std::size_t>(c.partition.count));
  for (EdgeId e = 0; e < static_cast<EdgeId>(g.num_edges()); ++e) {
    const Edge& edge = g.edge(e);
    const int cs = c.partition.comp_of[static_cast<std::size_t>(edge.src)];
    const int cd = c.partition.comp_of[static_cast<std::size_t>(edge.dst)];
    if (cs != cd) {
      c.dag.add_edge(static_cast<NodeId>(cs), static_cast<NodeId>(cd));
      c.edge_origin.push_back(e);
    }
  }
  return c;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_nodes() == 0) return false;
  return scc(g).count == 1;
}

}  // namespace lid::graph
