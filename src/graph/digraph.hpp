// A compact directed multigraph.
//
// This is the structural substrate for everything in the library: LIS
// netlists, marked graphs, condensations, and the vertex-cover instances of
// the NP-completeness reduction are all Digraphs. Parallel edges are allowed
// (a LIS frequently has two channels between the same pair of cores — Fig. 1
// of the paper) and self-loops are allowed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace lid::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

/// One directed edge.
struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  bool operator==(const Edge&) const = default;
};

/// Directed multigraph with stable integer node/edge ids.
///
/// Nodes and edges can only be added, never removed; algorithms that need a
/// subgraph take a mask instead. This keeps ids stable so that satellite data
/// (relay-station counts, queue capacities, tokens) can live in parallel
/// vectors owned by higher layers.
class Digraph {
 public:
  Digraph() = default;

  /// Creates a graph with `n` isolated nodes.
  explicit Digraph(std::size_t n) { add_nodes(n); }

  /// Adds one node; returns its id.
  NodeId add_node();

  /// Adds `n` nodes; returns the id of the first.
  NodeId add_nodes(std::size_t n);

  /// Adds a directed edge src -> dst; returns its id. Ids are dense and
  /// assigned in insertion order.
  EdgeId add_edge(NodeId src, NodeId dst);

  [[nodiscard]] std::size_t num_nodes() const { return out_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    LID_ENSURE(e >= 0 && static_cast<std::size_t>(e) < edges_.size(), "edge id out of range");
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Out-edges of `v`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> out_edges(NodeId v) const {
    check_node(v);
    return out_[static_cast<std::size_t>(v)];
  }

  /// In-edges of `v`, in insertion order.
  [[nodiscard]] std::span<const EdgeId> in_edges(NodeId v) const {
    check_node(v);
    return in_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::size_t out_degree(NodeId v) const { return out_edges(v).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return in_edges(v).size(); }

  /// True if some edge src -> dst exists.
  [[nodiscard]] bool has_edge(NodeId src, NodeId dst) const;

  /// All edge ids from src to dst (parallel edges each appear once).
  [[nodiscard]] std::vector<EdgeId> edges_between(NodeId src, NodeId dst) const;

  /// The reverse graph (same ids; edge e in the result is edge e reversed).
  [[nodiscard]] Digraph reversed() const;

 private:
  void check_node(NodeId v) const {
    LID_ENSURE(v >= 0 && static_cast<std::size_t>(v) < out_.size(), "node id out of range");
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace lid::graph
