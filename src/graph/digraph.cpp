#include "graph/digraph.hpp"

#include <algorithm>

namespace lid::graph {

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

NodeId Digraph::add_nodes(std::size_t n) {
  const NodeId first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + n);
  in_.resize(in_.size() + n);
  return first;
}

EdgeId Digraph::add_edge(NodeId src, NodeId dst) {
  check_node(src);
  check_node(dst);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{src, dst});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

bool Digraph::has_edge(NodeId src, NodeId dst) const {
  check_node(dst);
  const auto& outs = out_edges(src);
  return std::any_of(outs.begin(), outs.end(),
                     [&](EdgeId e) { return edges_[static_cast<std::size_t>(e)].dst == dst; });
}

std::vector<EdgeId> Digraph::edges_between(NodeId src, NodeId dst) const {
  check_node(dst);
  std::vector<EdgeId> found;
  for (const EdgeId e : out_edges(src)) {
    if (edges_[static_cast<std::size_t>(e)].dst == dst) found.push_back(e);
  }
  return found;
}

Digraph Digraph::reversed() const {
  Digraph rev(num_nodes());
  for (const Edge& e : edges_) rev.add_edge(e.dst, e.src);
  return rev;
}

}  // namespace lid::graph
