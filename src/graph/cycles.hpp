// Elementary-cycle enumeration (Johnson's algorithm, multigraph-aware).
//
// The queue-sizing pipeline (Sec. VII-A of the paper) starts from the list of
// cycles of the doubled marked graph, so this enumeration is the workhorse of
// the whole library. The paper notes the cycle count "may blow up fairly
// quickly"; enumeration therefore takes a hard cap and reports truncation
// instead of exhausting memory.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.hpp"
#include "util/cancel.hpp"

namespace lid::graph {

/// One elementary cycle, as the sequence of edge ids traversed in order.
/// Vertex sequence is implied (edge(e[i]).dst == edge(e[i+1]).src, wrapping).
using Cycle = std::vector<EdgeId>;

/// Options for cycle enumeration.
struct CycleEnumOptions {
  /// Stop after this many cycles have been emitted (0 = unlimited).
  std::size_t max_cycles = 0;
  /// Optional per-edge filter: edges for which this returns false are ignored
  /// entirely (treated as absent). Useful to enumerate only cycles inside a
  /// subgraph. Null = keep all edges.
  std::function<bool(EdgeId)> edge_filter;
  /// Cooperative cancellation, polled at search-tree boundaries. The default
  /// token never cancels.
  util::CancelToken cancel;
};

/// Result of cycle enumeration.
struct CycleEnumResult {
  std::vector<Cycle> cycles;
  /// True when enumeration stopped early (max_cycles reached or cancelled).
  bool truncated = false;
  /// True when specifically the cancel token stopped enumeration; the cycle
  /// list is then a prefix whose length depends on timing — callers must not
  /// treat it as a deterministic answer.
  bool cancelled = false;
};

/// Enumerates all elementary cycles of `g` (cycles that visit each vertex at
/// most once). Parallel edges yield distinct cycles; self-loops are cycles of
/// length one. Complexity O((V + E)(C + 1)) where C is the number of cycles.
CycleEnumResult enumerate_cycles(const Digraph& g, const CycleEnumOptions& options = {});

/// Streaming variant: invokes `on_cycle` for each cycle; enumeration stops
/// early when the callback returns false or `cancel` fires. Returns true if
/// enumeration ran to completion (callback never declined, never cancelled).
bool for_each_cycle(const Digraph& g, const std::function<bool(const Cycle&)>& on_cycle,
                    const std::function<bool(EdgeId)>& edge_filter = nullptr,
                    const util::CancelToken& cancel = {});

/// True if `g` has at least one cycle (self-loops count).
bool has_cycle(const Digraph& g);

/// Finds ONE cycle of `g` (restricted to edges passing `edge_filter` when
/// non-null) by depth-first search in O(V + E) — no enumeration. Returns the
/// cycle as edge ids in traversal order, or an empty vector when the
/// (filtered) graph is acyclic. This is the primitive behind every "is there
/// a token-free cycle?" check: unlike for_each_cycle it is safe on graphs
/// whose elementary-cycle count is astronomical.
Cycle find_cycle(const Digraph& g, const std::function<bool(EdgeId)>& edge_filter = nullptr);

}  // namespace lid::graph
