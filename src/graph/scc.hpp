// Strongly connected components (Tarjan) and graph condensation.
//
// The paper's MST definition (Sec. III-C) is per-SCC, and its fastest
// queue-sizing special case (Sec. VII-A, simplification 4) collapses each SCC
// of a DAG-of-SCCs topology to a single vertex; both are built on this module.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace lid::graph {

/// Partition of a digraph's nodes into strongly connected components.
struct SccPartition {
  /// comp_of[v] = component index of node v, in [0, count).
  /// Component indices are a reverse topological order of the condensation:
  /// if there is an edge from SCC a to SCC b (a != b) then comp_of gives
  /// a > b... see scc() documentation for the exact guarantee.
  std::vector<int> comp_of;
  /// Number of components.
  int count = 0;
  /// members[c] = nodes of component c.
  std::vector<std::vector<NodeId>> members;

  /// True if component c contains a cycle (≥2 nodes, or a self-loop).
  [[nodiscard]] bool is_cyclic(int c, const Digraph& g) const;
};

/// Computes SCCs with an iterative Tarjan traversal.
///
/// Guarantee: component indices are assigned in reverse topological order of
/// the condensation — for every edge (u, v) with comp_of[u] != comp_of[v],
/// comp_of[u] > comp_of[v].
SccPartition scc(const Digraph& g);

/// Condensation of `g`: one node per SCC and one edge per inter-SCC edge of
/// `g` (parallel condensation edges are preserved so that edge-level
/// satellite data can be mapped through `edge_origin`).
struct Condensation {
  Digraph dag;
  /// edge_origin[e] = the EdgeId of `g` that produced condensation edge e.
  std::vector<EdgeId> edge_origin;
  /// The partition the condensation was built from.
  SccPartition partition;
};

Condensation condense(const Digraph& g);

/// True when the whole graph is one SCC (and non-empty).
bool is_strongly_connected(const Digraph& g);

}  // namespace lid::graph
