// The unified public facade of the library.
//
// Everything a client needs for the common workflows — loading or generating
// a LIS, analyzing its throughput, sizing its queues, inserting relay
// stations — is exposed here under the top-level `lid::` namespace, over an
// opaque `lid::Instance` handle and a `lid::Result<T>` error type (code +
// message) instead of the historical mix of bools, exceptions and asserts.
//
//   lid::Result<lid::Instance> sys = lid::load_netlist("soc.lis");
//   if (!sys) { log(sys.error().to_string()); return; }
//   lid::Result<lid::Analysis> a = lid::analyze(*sys);
//   if (a && a->degraded) {
//     lid::Result<lid::Sizing> s = lid::size_queues(*sys);
//     if (s) lid::save_netlist(s->sized, "sized.lis");
//   }
//
// The per-module headers (lis/netlist_io.hpp, core/qs_problem.hpp,
// core/queue_sizing.hpp, core/rs_insertion.hpp, ...) remain available as the
// implementation layer for code that needs the full detail — e.g. the batch
// engine in src/engine — but new call sites should start here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "des/des.hpp"
#include "lint/checks.hpp"
#include "lis/lis_graph.hpp"
#include "lis/netlist_io.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/rational.hpp"
#include "verify/certificate.hpp"

namespace lid {

// ---------------------------------------------------------------------------
// Result<T> — the facade's error channel.

/// Machine-readable failure categories.
enum class ErrorCode {
  kIo = 1,           ///< file could not be read/written
  kParse,            ///< malformed netlist text
  kInvalidArgument,  ///< bad option value or inapplicable request
  kTimeout,          ///< a solver budget expired before an answer was proven
  kInternal,         ///< invariant violation inside the library
  kLint,             ///< pre-flight lint found error-tier diagnostics (the
                     ///< model is outside the analyses' domain); run
                     ///< lid::lint() for the full report
};

const char* to_string(ErrorCode code);

/// A failure: code + human-readable message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Either a value or an Error. Implicitly constructible from both, so
/// functions can `return Error{...}` or `return value` directly.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}      // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string message) : v_(Error{code, std::move(message)}) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  /// The value; throws std::invalid_argument when this holds an error.
  [[nodiscard]] const T& value() const& {
    LID_ENSURE(ok(), "Result::value on error: " + std::get<Error>(v_).message);
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    LID_ENSURE(ok(), "Result::value on error: " + std::get<Error>(v_).message);
    return std::get<T>(std::move(v_));
  }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  /// The error; throws std::invalid_argument when this holds a value.
  [[nodiscard]] const Error& error() const {
    LID_ENSURE(!ok(), "Result::error on success");
    return std::get<Error>(v_);
  }

  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> v_;
};

/// Result payload for operations that only succeed or fail.
struct Unit {};
using Status = Result<Unit>;

// ---------------------------------------------------------------------------
// Instance — the opaque netlist handle.

/// An immutable, cheaply copyable handle to a loaded/generated LIS. All
/// facade operations consume and produce Instances; transformations
/// (size_queues, insert_relay_stations) return new handles and never mutate
/// their input.
class Instance {
 public:
  /// An empty (invalid) handle; every facade call on it fails cleanly.
  Instance() = default;

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  [[nodiscard]] std::size_t num_cores() const;
  [[nodiscard]] std::size_t num_channels() const;
  [[nodiscard]] int total_relay_stations() const;

  /// Optional label carried through analyses and batch reports ("" if unset).
  [[nodiscard]] const std::string& name() const;

  /// Escape hatch for layers below the facade (the batch engine, exporters,
  /// simulators): the underlying netlist. Throws on an invalid handle.
  [[nodiscard]] const lis::LisGraph& graph() const;

  /// Source provenance (file + per-core/channel line numbers) when the
  /// instance was parsed from `.lis` text; nullptr for generated/wrapped
  /// instances. Lint renderers use it to anchor diagnostics to file:line.
  [[nodiscard]] const lis::Provenance* provenance() const;

  /// Wraps an already-built netlist in a handle (used by generators, tests
  /// and code migrating from the per-module APIs).
  static Instance wrap(lis::LisGraph graph, std::string name = {});

  /// Wraps a parsed netlist together with its source provenance, so lint
  /// diagnostics can point at file:line (parse_netlist/load_netlist use this).
  static Instance wrap(lis::ParsedNetlist parsed, std::string name = {});

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

// ---------------------------------------------------------------------------
// Loading, saving, generating.

/// Loads a netlist file (the text format of docs/file-format.md).
Result<Instance> load_netlist(const std::string& path);

/// Parses netlist text.
Result<Instance> parse_netlist(const std::string& text, std::string name = {});

/// Serializes to the canonical text format (round-trip safe).
Result<std::string> netlist_text(const Instance& instance);

/// Writes the canonical text format to `path`.
Status save_netlist(const Instance& instance, const std::string& path);

/// Parameters of the paper's synthetic generator (Sec. VIII).
struct GenerateOptions {
  int cores = 50;            ///< v — total cores
  int sccs = 5;              ///< s — number of SCCs
  int extra_cycles = 5;      ///< c — extra chords (and thus cycles) per SCC
  int relay_stations = 10;   ///< rs — relay stations to distribute
  bool reconvergent = true;  ///< rp — allow reconvergent inter-SCC paths
  bool rs_anywhere = false;  ///< false: relay stations only between SCCs
  int queue_capacity = 1;    ///< initial uniform queue capacity
  std::uint64_t seed = 1;
};

/// Generates a random LIS; deterministic per seed.
Result<Instance> generate(const GenerateOptions& options = {});

/// The COFDM UWB transmitter case study (Sec. IX; 12 blocks, 30 channels).
Instance cofdm_soc();

// ---------------------------------------------------------------------------
// Analysis.

struct AnalyzeOptions {
  /// Also compute the critical cycle of d[G] (hop descriptions).
  bool critical_cycle = true;
  /// Also run the Sec. III-C rate-safety analysis.
  bool rate_safety = true;
  /// Run the error-tier lint checks first and fail with ErrorCode::kLint
  /// (carrying the diagnostic summary) instead of tripping an internal
  /// invariant mid-solve on a broken model (deadlocked, empty, q = 0).
  bool preflight = true;
  /// Attach an independently checkable certificate for the reported thetas
  /// (verify::Certificate; see docs/certificates.md). Costs one extra
  /// evidence pass per expansion; off by default.
  bool certify = false;
};

/// Throughput analysis of one instance.
struct Analysis {
  std::size_t cores = 0;
  std::size_t channels = 0;
  int relay_stations = 0;
  /// Table II topology class ("tree", "cactus SCCs", "general", ...).
  std::string topology;
  util::Rational theta_ideal;      ///< θ(G), infinite queues
  util::Rational theta_practical;  ///< θ(d[G]), finite queues
  bool degraded = false;           ///< theta_practical < theta_ideal
  /// Hops of the limiting cycle of d[G] (empty when not requested or acyclic).
  std::vector<std::string> critical_cycle;
  /// Inter-SCC channels where a faster producer feeds a slower consumer.
  std::size_t rate_hazards = 0;
  bool rate_safe = true;
  /// The optimality certificate (present when AnalyzeOptions::certify).
  std::optional<verify::Certificate> certificate;
};

Result<Analysis> analyze(const Instance& instance, const AnalyzeOptions& options = {});

// ---------------------------------------------------------------------------
// Static diagnostics (the lid_lint subsystem; see docs/lint.md).

/// Runs the registered lint checks over the instance. The report lists every
/// finding with its stable code ("L001"...), severity, message, location and
/// machine-applicable fix-its; linter::LintOptions selects the tier (set
/// `target` to enable the throughput-antipattern checks). A clean model
/// yields an empty report — lint() only fails on an invalid handle or an
/// internal error, never because diagnostics were found.
Result<linter::Report> lint(const Instance& instance, const linter::LintOptions& options = {});

// ---------------------------------------------------------------------------
// Queue sizing.

enum class Solver {
  kHeuristic,  ///< the paper's sweep heuristic (fast, near-optimal)
  kExact,      ///< branch-and-bound (optimal, budgeted)
  kBoth,
  kLazy,  ///< lazy critical-cycle constraint generation (optimal; no
          ///< up-front cycle enumeration, falls back to kBoth on stall)
};

struct SizeQueuesOptions {
  /// Default kLazy: optimal totals without enumerating the cycles of d[G]
  /// up front (it generates only the binding critical cycles and falls back
  /// to the eager kBoth pipeline on stall), so the default path scales to
  /// netlists whose cycle count is astronomical. Pick kBoth/kHeuristic/
  /// kExact explicitly to force the eager pipeline.
  Solver solver = Solver::kLazy;
  /// Wall-clock budget of the exact solver; <= 0 means unlimited. Wall-clock
  /// cutoffs are load-dependent; prefer exact_max_nodes when reproducibility
  /// matters (the batch engine does).
  double exact_timeout_ms = 60'000.0;
  /// Deterministic node budget of the exact solver; 0 means unlimited.
  std::int64_t exact_max_nodes = 0;
  /// Cap on enumerated cycles (0 = unlimited).
  std::size_t max_cycles = 2'000'000;
  /// Run the paper's TD-instance reductions before solving. Leave on except
  /// for ablation, or to force the exact search to work on the raw instance
  /// (the reductions collapse most instances to a zero-probe search, which
  /// makes node budgets and cancel tokens unobservable).
  bool simplify = true;
  /// Target throughput; 0 means the ideal MST θ(G).
  util::Rational target = util::Rational(0);
  /// Cooperative cancellation (e.g. a request deadline). A token firing
  /// during cycle enumeration fails the whole call with ErrorCode::kTimeout —
  /// a partial enumeration is timing-dependent and never served as an
  /// answer. A token firing during the exact solve degrades gracefully: the
  /// result carries the heuristic weights with exact_proved == false and
  /// exact_cancelled == true. The default token never cancels.
  util::CancelToken cancel;
  /// Run the error-tier lint checks first; see AnalyzeOptions::preflight.
  bool preflight = true;
  /// Attach an independently checkable certificate for the sizing: the ideal
  /// ceiling, the applied weights, a post-sizing optimality witness, and —
  /// when the lazy solver converged without the SCC collapse — its
  /// generating constraint set as the lower-bound witness.
  bool certify = false;
};

/// One grown queue.
struct QueueChange {
  std::string src;
  std::string dst;
  int before = 1;
  int after = 1;
};

/// Outcome of queue sizing.
struct Sizing {
  util::Rational theta_ideal;
  util::Rational theta_practical;
  util::Rational achieved;  ///< MST of `sized`
  bool degraded = false;    ///< false: nothing to do, `sized` == input
  std::int64_t heuristic_total = -1;  ///< -1 when the heuristic did not run
  double heuristic_ms = 0.0;
  std::int64_t exact_total = -1;  ///< -1 when the exact solver did not run
  double exact_ms = 0.0;
  bool exact_proved = false;      ///< exact finished within its budget
  bool exact_cancelled = false;   ///< the cancel token ended the exact solve
  std::int64_t exact_nodes = 0;   ///< search nodes explored (partial-progress stat)
  std::size_t cycles_enumerated = 0;
  bool truncated = false;  ///< cycle enumeration hit max_cycles
  std::vector<QueueChange> changes;
  Instance sized;
  // --- lazy solver diagnostics (meaningful only when solver == kLazy) ---
  bool solver_lazy = false;            ///< the lazy driver handled this call
  std::int64_t lazy_iterations = 0;    ///< separation rounds run
  std::int64_t cycles_generated = 0;   ///< critical-cycle constraints added
  std::int64_t howard_warm_restarts = 0;  ///< warm-started Howard solves
  bool lazy_fell_back = false;  ///< full enumeration took over mid-solve
  /// The sizing certificate (present when SizeQueuesOptions::certify).
  std::optional<verify::Certificate> certificate;
};

Result<Sizing> size_queues(const Instance& instance, const SizeQueuesOptions& options = {});

// ---------------------------------------------------------------------------
// Certificate verification (the src/verify checker; docs/certificates.md).

/// Re-checks a certificate against an instance with the standalone O(E)
/// checker — no solver code runs. A *rejected* certificate is a successful
/// call (inspect CheckResult::ok / reason); the Result only fails on an
/// invalid handle. The `json` overload parses the certificate document first
/// and fails with ErrorCode::kParse when it is not even well-formed.
Result<verify::CheckResult> verify_certificate(const Instance& instance,
                                               const verify::Certificate& certificate);
Result<verify::CheckResult> verify_certificate(const Instance& instance, const std::string& json);

// ---------------------------------------------------------------------------
// Event-driven stochastic simulation (src/des; see docs/simulation.md).

struct DesOptions {
  /// Measured window in cycles; statistics cover [warmup, warmup + horizon).
  std::int64_t horizon = 10'000;
  /// Cycles excluded from statistics (transient skip).
  std::int64_t warmup = 0;
  /// RNG seed. Reports are byte-identical per (netlist, options, seed).
  std::uint64_t seed = 1;
  /// Default per-channel forward-hop latency model (fixed:1 = the paper's
  /// synchronous limit).
  des::LatencyDist channel_latency{};
  /// Default arrival process at source cores (saturated = closed system).
  des::ArrivalSpec arrival{};
  /// Per-channel / per-source overrides, e.g. parsed from `#!` netlist
  /// annotations (des/annotations.hpp). Empty = defaults everywhere.
  des::Profile profile;
  /// Record per-channel occupancy histograms and percentiles.
  bool trace_occupancy = true;
  /// Name of the core whose firing rate is reported ("" = first core).
  std::string reference;
  /// Detect state recurrence in the deterministic regime and return the
  /// exact periodic throughput (stopping early).
  bool detect_period = true;
  /// Cooperative cancellation, polled once per event batch. A cancelled run
  /// fails with ErrorCode::kTimeout (partial statistics are never served).
  util::CancelToken cancel;
  /// Run the error-tier lint checks first; see AnalyzeOptions::preflight.
  bool preflight = true;
};

/// The DES report: exact throughput, stall counters, per-channel occupancy
/// percentiles. See des::SimReport for the field-level documentation.
using DesReport = des::SimReport;

/// Simulates the doubled marked graph d[G] of the instance as a
/// discrete-event system with stochastic channel latencies and open-system
/// arrivals. In the deterministic limit (fixed unit latencies, saturated
/// sources) the reported throughput equals min(1, θ(d[G])) exactly.
Result<DesReport> simulate_des(const Instance& instance, const DesOptions& options = {});

// ---------------------------------------------------------------------------
// Relay-station insertion (Sec. VI).

struct InsertRelayStationsOptions {
  /// Maximum relay stations to add.
  int budget = 1;
  /// Exhaustive multiset search instead of greedy (exponential; small
  /// systems only).
  bool exhaustive = false;
};

struct RelayInsertion {
  util::Rational original_ideal;   ///< θ(G) of the input — the repair target
  util::Rational best_practical;   ///< θ(d[G]) achieved
  int added = 0;
  bool reached_ideal = false;
  std::size_t configurations_tried = 0;
  Instance repaired;
};

Result<RelayInsertion> insert_relay_stations(const Instance& instance,
                                             const InsertRelayStationsOptions& options = {});

}  // namespace lid
