#include "lid_api.hpp"

#include <exception>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/certify.hpp"
#include "core/diagnostics.hpp"
#include "core/queue_sizing.hpp"
#include "core/rate_safety.hpp"
#include "core/rs_insertion.hpp"
#include "lid_api_detail.hpp"
#include "gen/generator.hpp"
#include "graph/topology.hpp"
#include "lis/netlist_io.hpp"
#include "soc/cofdm.hpp"
#include "util/rng.hpp"

namespace lid {
namespace {

/// Runs `body` and converts the library's exception conventions into the
/// facade's Error codes: std::invalid_argument marks bad input, everything
/// else an internal invariant failure.
template <typename T, typename Fn>
Result<T> guarded(ErrorCode bad_input_code, Fn&& body) {
  try {
    return body();
  } catch (const std::invalid_argument& e) {
    return Error{bad_input_code, e.what()};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal, e.what()};
  }
}

Error invalid_handle(const char* who) {
  return Error{ErrorCode::kInvalidArgument, std::string(who) + ": invalid (empty) instance handle"};
}

}  // namespace

namespace detail {

std::optional<Error> lint_preflight(const char* who, const lis::LisGraph& lis) {
  const linter::Report report = linter::run_error_checks(lis);
  if (!report.has_errors()) return std::nullopt;
  return Error{ErrorCode::kLint, std::string(who) + ": " + report.error_summary()};
}

Analysis analysis_from_reports(const lis::LisGraph& lis, const core::DegradationReport& report,
                               const core::RateSafetyReport* rates, const AnalyzeOptions& options) {
  Analysis analysis;
  analysis.cores = lis.num_cores();
  analysis.channels = lis.num_channels();
  analysis.relay_stations = lis.total_relay_stations();
  analysis.topology = graph::to_string(graph::classify(lis.structure()));
  analysis.theta_ideal = report.theta_ideal;
  analysis.theta_practical = report.theta_practical;
  analysis.degraded = report.degraded;
  if (options.critical_cycle) {
    analysis.critical_cycle.reserve(report.critical_cycle.size());
    for (const core::CriticalHop& hop : report.critical_cycle) {
      analysis.critical_cycle.push_back(hop.description);
    }
  }
  if (options.rate_safety) {
    LID_ENSURE(rates != nullptr, "analysis_from_reports: rate_safety set without a report");
    analysis.rate_hazards = rates->hazards.size();
    analysis.rate_safe = rates->safe();
  }
  if (options.certify) analysis.certificate = core::certify_analysis(lis);
  return analysis;
}

core::QsOptions qs_options_from(const SizeQueuesOptions& options) {
  core::QsOptions qs;
  switch (options.solver) {
    case Solver::kHeuristic: qs.method = core::QsMethod::kHeuristic; break;
    case Solver::kExact: qs.method = core::QsMethod::kExact; break;
    case Solver::kBoth: qs.method = core::QsMethod::kBoth; break;
    case Solver::kLazy: qs.method = core::QsMethod::kLazy; break;
  }
  qs.exact.timeout_ms = options.exact_timeout_ms;
  qs.exact.max_nodes = options.exact_max_nodes;
  qs.exact.cancel = options.cancel;
  qs.simplify = options.simplify;
  qs.build.max_cycles = options.max_cycles;
  qs.build.target_mst = options.target;
  qs.build.cancel = options.cancel;
  return qs;
}

Result<Sizing> sizing_from_report(const lis::LisGraph& lis, const core::QsReport& report,
                                  const Instance& original, const SizeQueuesOptions& options) {
  if (report.problem.cancelled) {
    // A partial enumeration depends on wall-clock timing; serving weights
    // derived from it would break response determinism, so fail instead.
    return Error{ErrorCode::kTimeout, "size_queues: cancelled during cycle enumeration"};
  }

  Sizing sizing;
  sizing.theta_ideal = report.problem.theta_ideal;
  sizing.theta_practical = report.problem.theta_practical;
  sizing.achieved = report.achieved_mst;
  sizing.degraded = report.problem.has_degradation();
  sizing.cycles_enumerated = report.problem.cycles_enumerated;
  sizing.truncated = report.problem.truncated;
  if (report.heuristic) {
    sizing.heuristic_total = report.heuristic->total_extra_tokens;
    sizing.heuristic_ms = report.heuristic->cpu_ms;
  }
  if (report.exact) {
    sizing.exact_total = report.exact->total_extra_tokens;
    sizing.exact_ms = report.exact->cpu_ms;
    sizing.exact_proved = report.exact->finished;
    sizing.exact_cancelled = report.exact->cancelled;
    sizing.exact_nodes = report.exact->nodes_explored;
  }
  if (report.lazy) {
    sizing.solver_lazy = true;
    sizing.lazy_iterations = report.lazy->iterations;
    sizing.cycles_generated = report.lazy->cycles_generated;
    sizing.howard_warm_restarts = report.lazy->howard_warm_restarts;
    sizing.lazy_fell_back = report.lazy->fell_back;
  }
  for (const lis::ChannelId ch : report.problem.channels) {
    const int before = lis.channel(ch).queue_capacity;
    const int after = report.sized.channel(ch).queue_capacity;
    if (after != before) {
      sizing.changes.push_back(QueueChange{lis.core_name(lis.channel(ch).src),
                                           lis.core_name(lis.channel(ch).dst), before, after});
    }
  }
  sizing.sized = Instance::wrap(report.sized, original.name());
  if (options.certify) sizing.certificate = core::certify_sizing(lis, report);
  return sizing;
}

}  // namespace detail

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo: return "io";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kLint: return "lint";
  }
  return "unknown";
}

std::string Error::to_string() const {
  return std::string("[") + lid::to_string(code) + "] " + message;
}

// ---------------------------------------------------------------------------
// Instance.

struct Instance::Impl {
  lis::LisGraph graph;
  std::string name;
  /// Set when parsed from `.lis` text; empty file + empty line tables mean
  /// "no provenance" (generated or wrapped instances).
  lis::Provenance provenance;
  bool has_provenance = false;
};

std::size_t Instance::num_cores() const { return graph().num_cores(); }
std::size_t Instance::num_channels() const { return graph().num_channels(); }
int Instance::total_relay_stations() const { return graph().total_relay_stations(); }

const std::string& Instance::name() const {
  LID_ENSURE(valid(), "Instance::name: invalid handle");
  return impl_->name;
}

const lis::LisGraph& Instance::graph() const {
  LID_ENSURE(valid(), "Instance::graph: invalid handle");
  return impl_->graph;
}

const lis::Provenance* Instance::provenance() const {
  LID_ENSURE(valid(), "Instance::provenance: invalid handle");
  return impl_->has_provenance ? &impl_->provenance : nullptr;
}

Instance Instance::wrap(lis::LisGraph graph, std::string name) {
  Instance instance;
  Impl impl;
  impl.graph = std::move(graph);
  impl.name = std::move(name);
  instance.impl_ = std::make_shared<const Impl>(std::move(impl));
  return instance;
}

Instance Instance::wrap(lis::ParsedNetlist parsed, std::string name) {
  Instance instance;
  Impl impl;
  impl.graph = std::move(parsed.graph);
  impl.name = std::move(name);
  impl.provenance = std::move(parsed.provenance);
  impl.has_provenance = true;
  instance.impl_ = std::make_shared<const Impl>(std::move(impl));
  return instance;
}

// ---------------------------------------------------------------------------
// Loading, saving, generating.

Result<Instance> load_netlist(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{ErrorCode::kIo, "cannot open '" + path + "' for reading"};
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) return Error{ErrorCode::kIo, "read error on '" + path + "'"};
  auto parsed = parse_netlist(text.str(), path);
  if (!parsed.ok()) {
    return Error{parsed.error().code, path + ": " + parsed.error().message};
  }
  return parsed;
}

Result<Instance> parse_netlist(const std::string& text, std::string name) {
  return guarded<Instance>(ErrorCode::kParse, [&] {
    // Parse before wrapping: wrap() would otherwise race the move of `name`
    // into its second argument against the copy in the first.
    lis::ParsedNetlist parsed = lis::from_text_with_provenance(text, name);
    return Instance::wrap(std::move(parsed), std::move(name));
  });
}

Result<std::string> netlist_text(const Instance& instance) {
  if (!instance.valid()) return invalid_handle("netlist_text");
  return lis::to_text(instance.graph());
}

Status save_netlist(const Instance& instance, const std::string& path) {
  if (!instance.valid()) return invalid_handle("save_netlist");
  std::ofstream out(path);
  if (!out) return Error{ErrorCode::kIo, "cannot open '" + path + "' for writing"};
  out << lis::to_text(instance.graph());
  out.flush();
  if (!out) return Error{ErrorCode::kIo, "write error on '" + path + "'"};
  return Unit{};
}

Result<Instance> generate(const GenerateOptions& options) {
  return guarded<Instance>(ErrorCode::kInvalidArgument, [&]() -> Result<Instance> {
    gen::GeneratorParams params;
    params.vertices = options.cores;
    params.sccs = options.sccs;
    params.min_cycles = options.extra_cycles;
    params.relay_stations = options.relay_stations;
    params.reconvergent = options.reconvergent;
    params.policy = options.rs_anywhere ? gen::RsPolicy::kAny : gen::RsPolicy::kScc;
    params.queue_capacity = options.queue_capacity;
    util::Rng rng(options.seed);
    return Instance::wrap(gen::generate(params, rng), "gen-" + std::to_string(options.seed));
  });
}

Instance cofdm_soc() { return Instance::wrap(soc::build_cofdm(), "cofdm"); }

// ---------------------------------------------------------------------------
// Analysis.

Result<Analysis> analyze(const Instance& instance, const AnalyzeOptions& options) {
  if (!instance.valid()) return invalid_handle("analyze");
  if (options.preflight) {
    if (auto rejected = detail::lint_preflight("analyze", instance.graph())) return *rejected;
  }
  return guarded<Analysis>(ErrorCode::kInvalidArgument, [&] {
    const lis::LisGraph& lis = instance.graph();
    const core::DegradationReport report = core::explain_degradation(lis);
    std::optional<core::RateSafetyReport> rates;
    if (options.rate_safety) rates = core::analyze_rate_safety(lis);
    return detail::analysis_from_reports(lis, report, rates ? &*rates : nullptr, options);
  });
}

// ---------------------------------------------------------------------------
// Static diagnostics.

Result<linter::Report> lint(const Instance& instance, const linter::LintOptions& options) {
  if (!instance.valid()) return invalid_handle("lint");
  return guarded<linter::Report>(ErrorCode::kInvalidArgument,
                               [&] { return linter::run_checks(instance.graph(), options); });
}

// ---------------------------------------------------------------------------
// Queue sizing.

Result<Sizing> size_queues(const Instance& instance, const SizeQueuesOptions& options) {
  if (!instance.valid()) return invalid_handle("size_queues");
  if (options.preflight) {
    if (auto rejected = detail::lint_preflight("size_queues", instance.graph())) return *rejected;
  }
  return guarded<Sizing>(ErrorCode::kInvalidArgument, [&]() -> Result<Sizing> {
    const lis::LisGraph& lis = instance.graph();
    const core::QsReport report = core::size_queues(lis, detail::qs_options_from(options));
    return detail::sizing_from_report(lis, report, instance, options);
  });
}

// ---------------------------------------------------------------------------
// Certificate verification.

Result<verify::CheckResult> verify_certificate(const Instance& instance,
                                               const verify::Certificate& certificate) {
  if (!instance.valid()) return invalid_handle("verify_certificate");
  return guarded<verify::CheckResult>(ErrorCode::kInvalidArgument,
                                      [&] { return verify::check(instance.graph(), certificate); });
}

Result<verify::CheckResult> verify_certificate(const Instance& instance, const std::string& json) {
  if (!instance.valid()) return invalid_handle("verify_certificate");
  const verify::CertificateParse parsed = verify::parse_certificate_text(json);
  if (!parsed.ok) return Error{ErrorCode::kParse, "verify_certificate: " + parsed.error};
  return verify_certificate(instance, parsed.certificate);
}

// ---------------------------------------------------------------------------
// Event-driven stochastic simulation.

Result<DesReport> simulate_des(const Instance& instance, const DesOptions& options) {
  if (!instance.valid()) return invalid_handle("simulate_des");
  if (options.preflight) {
    if (auto rejected = detail::lint_preflight("simulate_des", instance.graph())) {
      return *rejected;
    }
  }
  return guarded<DesReport>(ErrorCode::kInvalidArgument, [&]() -> Result<DesReport> {
    const lis::LisGraph& lis = instance.graph();
    des::SimOptions sim;
    sim.horizon = options.horizon;
    sim.warmup = options.warmup;
    sim.seed = options.seed;
    sim.channel_latency = options.channel_latency;
    sim.arrival = options.arrival;
    sim.profile = options.profile;
    sim.trace_occupancy = options.trace_occupancy;
    sim.detect_period = options.detect_period;
    sim.cancel = options.cancel;
    if (!options.reference.empty()) {
      lis::CoreId reference = graph::kInvalidNode;
      for (lis::CoreId v = 0; v < static_cast<lis::CoreId>(lis.num_cores()); ++v) {
        if (lis.core_name(v) == options.reference) {
          reference = v;
          break;
        }
      }
      if (reference == graph::kInvalidNode) {
        return Error{ErrorCode::kInvalidArgument,
                     "simulate_des: unknown reference core '" + options.reference + "'"};
      }
      sim.reference = reference;
    }
    DesReport report = des::simulate(lis, sim);
    if (report.cancelled) {
      return Error{ErrorCode::kTimeout,
                   "simulate_des: cancelled after " + std::to_string(report.cycles_run) +
                       " of " + std::to_string(options.warmup + options.horizon) + " cycles"};
    }
    return report;
  });
}

// ---------------------------------------------------------------------------
// Relay-station insertion.

Result<RelayInsertion> insert_relay_stations(const Instance& instance,
                                             const InsertRelayStationsOptions& options) {
  if (!instance.valid()) return invalid_handle("insert_relay_stations");
  if (options.budget < 0) {
    return Error{ErrorCode::kInvalidArgument, "insert_relay_stations: negative budget"};
  }
  return guarded<RelayInsertion>(ErrorCode::kInvalidArgument, [&] {
    const core::RsInsertionResult result =
        options.exhaustive ? core::exhaustive_rs_insertion(instance.graph(), options.budget)
                           : core::greedy_rs_insertion(instance.graph(), options.budget);
    RelayInsertion insertion;
    insertion.original_ideal = result.original_ideal;
    insertion.best_practical = result.best_practical;
    insertion.added = result.relay_stations_added;
    insertion.reached_ideal = result.reached_ideal;
    insertion.configurations_tried = result.configurations_tried;
    insertion.repaired = Instance::wrap(result.best, instance.name());
    return insertion;
  });
}

}  // namespace lid
